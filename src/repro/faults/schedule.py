"""Compile fault specs into timed engine events and arm them on a run.

A :class:`FaultSchedule` is the executable form of a list of
:class:`~repro.faults.spec.FaultSpec`: every spec becomes one or two
:class:`FaultEvent` rows (onset + restore) with absolute nanosecond
times.  Compilation is deterministic — start-time jitter is drawn from
the named ``faults`` RNG stream, so identical experiment seeds yield
bit-identical schedules, and a burst's loss lottery draws from a
per-link ``faultloss:<link>`` stream that never perturbs the draws of
existing consumers.

Arming registers one cancellable engine event per row.  Each firing
mutates the resolved :class:`~repro.net.link.Link` /
:class:`~repro.net.interface.Interface` through the validated ``set_*``
hooks, appends to :attr:`FaultSchedule.applied` (the audit trail that
ends up in the run log's ``fault_manifest``), and records a ``fault``
event on the attached tracer (the flight recorder, when telemetry is
on — :attr:`tracer` is read at fire time, so it can be attached after
arming without changing event order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from repro.faults.spec import FaultSpec
from repro.sim.trace import NULL_TRACER
from repro.units import seconds


@dataclass(frozen=True)
class FaultEvent:
    """One compiled mutation: at ``time_ns``, apply ``action`` to ``target``."""

    time_ns: int
    action: str
    target: str
    value: Optional[float] = None
    flush: bool = False
    spec_index: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (one ``events`` row of the fault manifest)."""
        return {
            "time_ns": self.time_ns,
            "action": self.action,
            "target": self.target,
            "value": self.value,
            "flush": self.flush,
            "spec_index": self.spec_index,
        }


class FaultTarget(NamedTuple):
    """A resolved target: the link to mutate and its owning interface."""

    link: Any
    iface: Optional[Any]


#: Symbolic dumbbell targets -> directed link name (see testbed.dumbbell).
_DUMBBELL_LINKS = {
    "bottleneck": "router1->router2",
    "reverse": "router2->router1",
    "access1": "client1->router1",
    "access2": "client2->router1",
}


def resolve_dumbbell_target(dumbbell, target: str) -> FaultTarget:
    """Map a symbolic (or raw ``a->b``) target onto a built dumbbell."""
    net = dumbbell.network
    link_name = _DUMBBELL_LINKS.get(target, target)
    link = net.links.get(link_name)
    if link is None:
        raise ValueError(
            f"fault target {target!r} does not resolve to a link "
            f"(have {sorted(net.links)})"
        )
    for node in net.nodes.values():
        for iface in node.interfaces.values():
            if iface.link is link:
                return FaultTarget(link, iface)
    return FaultTarget(link, None)


class FaultSchedule:
    """Compiled, armable fault timeline for one run."""

    def __init__(self, specs: Sequence[FaultSpec], events: Sequence[FaultEvent]):
        self.specs = list(specs)
        self.events = list(events)
        #: Audit trail of fired mutations ({time_ns, action, target, value}).
        self.applied: List[Dict[str, Any]] = []
        #: Read at fire time; attach a FlightRecorder for trace events.
        self.tracer = NULL_TRACER
        self._prior: Dict[tuple, float] = {}
        self._rng_streams = None

    # -- compilation --------------------------------------------------------------

    @classmethod
    def compile(cls, specs: Sequence[FaultSpec], *, rng=None) -> "FaultSchedule":
        """Expand specs into time-ordered events.

        ``rng`` (the ``faults`` stream) is only consulted for specs with
        ``jitter_s > 0`` — jitter-free schedules compile identically with
        or without one.
        """
        events: List[FaultEvent] = []
        for i, spec in enumerate(specs):
            onset = seconds(spec.at_s)
            if spec.jitter_s > 0:
                if rng is None:
                    raise ValueError("fault specs with jitter need an rng")
                onset += int(rng.uniform(0.0, spec.jitter_s * 1e9))
            end = onset + seconds(spec.duration_s)
            if spec.kind == "link_flap":
                events.append(FaultEvent(onset, "link_down", spec.target,
                                         flush=spec.flush, spec_index=i))
                events.append(FaultEvent(end, "link_up", spec.target, spec_index=i))
            elif spec.kind == "loss_burst":
                events.append(FaultEvent(onset, "loss_set", spec.target,
                                         value=spec.loss_rate, spec_index=i))
                events.append(FaultEvent(end, "loss_restore", spec.target, spec_index=i))
            elif spec.kind == "rate_drop":
                events.append(FaultEvent(onset, "rate_scale", spec.target,
                                         value=spec.rate_factor, spec_index=i))
                events.append(FaultEvent(end, "rate_restore", spec.target, spec_index=i))
            elif spec.kind == "delay_spike":
                events.append(FaultEvent(onset, "delay_scale", spec.target,
                                         value=spec.delay_factor, spec_index=i))
                events.append(FaultEvent(end, "delay_restore", spec.target, spec_index=i))
            elif spec.kind == "queue_flush":
                events.append(FaultEvent(onset, "queue_flush", spec.target, spec_index=i))
            else:  # pragma: no cover - FaultSpec already validated the kind
                raise ValueError(f"unknown fault kind {spec.kind!r}")
        # Stable sort: same-instant onset fires before its own restore,
        # and ties across specs break by declaration order.
        events.sort(key=lambda e: e.time_ns)
        return cls(specs, events)

    @classmethod
    def from_config(cls, config, rng=None) -> Optional["FaultSchedule"]:
        """Compile the ``faults:`` block of an experiment config (None if empty)."""
        if not getattr(config, "faults", None):
            return None
        specs = [FaultSpec.from_dict(d) for d in config.faults]
        return cls.compile(specs, rng=rng)

    # -- arming -------------------------------------------------------------------

    def arm(self, sim, dumbbell) -> None:
        """Register every event on the engine against a built dumbbell."""
        self.arm_with(
            sim,
            lambda target: resolve_dumbbell_target(dumbbell, target),
            rng_streams=dumbbell.network.rng,
        )

    def arm_with(self, sim, resolve, *, rng_streams=None) -> None:
        """Generic arming: ``resolve(target)`` must return a :class:`FaultTarget`.

        Targets are resolved eagerly so a bad target fails at arm time,
        not mid-run.  ``rng_streams`` supplies the per-link loss stream a
        ``loss_burst`` needs when the link has no loss RNG of its own.
        """
        self._rng_streams = rng_streams
        handles = {e.target: resolve(e.target) for e in self.events}
        for event in self.events:
            sim.schedule_at(max(event.time_ns, sim.now), self._fire, event, handles[event.target])

    # -- firing -------------------------------------------------------------------

    def _loss_rng_for(self, link):
        if link._loss_rng is not None or self._rng_streams is None:
            return None
        return self._rng_streams.stream(f"faultloss:{link.name}")

    def _fire(self, event: FaultEvent, handle: FaultTarget) -> None:
        link = handle.link
        action = event.action
        applied_value: Optional[float] = event.value
        if action == "link_down":
            if event.flush and handle.iface is not None:
                handle.iface.set_down(flush_queue=True)
            else:
                link.set_down()
        elif action == "link_up":
            link.set_up()
        elif action == "loss_set":
            self._prior[(event.target, "loss")] = link.loss_rate
            link.set_loss_rate(event.value, rng=self._loss_rng_for(link))
        elif action == "loss_restore":
            applied_value = self._prior.pop((event.target, "loss"), 0.0)
            link.set_loss_rate(applied_value)
        elif action == "rate_scale":
            prior = self._prior[(event.target, "rate")] = link.rate_bps
            applied_value = prior * event.value
            link.set_rate(applied_value)
        elif action == "rate_restore":
            applied_value = self._prior.pop((event.target, "rate"), link.rate_bps)
            link.set_rate(applied_value)
        elif action == "delay_scale":
            prior = self._prior[(event.target, "delay")] = link.delay_ns
            applied_value = int(prior * event.value)
            link.set_delay(applied_value)
        elif action == "delay_restore":
            applied_value = self._prior.pop((event.target, "delay"), link.delay_ns)
            link.set_delay(int(applied_value))
        elif action == "queue_flush":
            qdisc = handle.iface.qdisc if handle.iface is not None else None
            if qdisc is None:
                raise RuntimeError(
                    f"queue_flush target {event.target!r} has no egress qdisc"
                )
            applied_value = float(qdisc.flush(event.time_ns))
        else:  # pragma: no cover - compile() emits a closed action set
            raise ValueError(f"unknown fault action {action!r}")
        self.applied.append(
            {
                "time_ns": event.time_ns,
                "action": action,
                "target": event.target,
                "value": applied_value,
            }
        )
        if self.tracer.enabled:
            self.tracer.record(
                "fault", event.time_ns,
                action=action, target=event.target, value=applied_value,
            )

    # -- introspection ------------------------------------------------------------

    @property
    def injected(self) -> int:
        """Mutations fired so far (the ``faults_injected_total`` metric)."""
        return len(self.applied)

    def manifest(self) -> Dict[str, Any]:
        """JSON-ready description for the run log's ``fault_manifest`` record."""
        return {
            "specs": [s.to_dict() for s in self.specs],
            "events": [e.to_dict() for e in self.events],
        }

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule specs={len(self.specs)} events={len(self.events)} injected={self.injected}>"
