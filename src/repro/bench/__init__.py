"""Benchmark-regression subsystem.

:mod:`repro.bench.workloads` defines the pinned-seed workloads that both
the pytest-benchmark suite (``benchmarks/bench_engine.py``) and the
regression harness execute; :mod:`repro.bench.harness` runs them, writes
machine-readable ``BENCH_<date>_<tag>.json`` reports, and gates on
regressions against a previous baseline.
"""

from repro.bench.harness import compare_reports, run_benches, write_report
from repro.bench.workloads import WORKLOADS

__all__ = ["WORKLOADS", "compare_reports", "run_benches", "write_report"]
