"""Benchmark runner + regression gate.

``run_benches`` executes the pinned-seed workloads from
:mod:`repro.bench.workloads` and produces a machine-readable report:
per-bench events/sec, wall time, process peak RSS, and a config hash that
ties the numbers to the exact workload parameters.  ``write_report``
saves it as ``BENCH_<date>_<tag>.json``; ``compare_reports`` checks a new
report against a baseline with a relative tolerance budget and returns
the regressions, so CI can gate (``main()`` exits nonzero on any).

Only benches whose config hash matches the baseline's are compared —
changing a workload's parameters silently invalidates old numbers, and
the hash turns that into an explicit "not comparable" instead of a bogus
pass/fail.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.workloads import WORKLOADS, WORKLOADS_BY_NAME, WorkloadSpec

SCHEMA_VERSION = 1
#: Default relative tolerance: a bench regresses when its events/sec falls
#: more than this fraction below the baseline.
DEFAULT_TOLERANCE = 0.10
DEFAULT_REPEATS = 3


def config_hash(config: Dict[str, Any]) -> str:
    """Short stable hash of a workload's pinning parameters."""
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def peak_rss_kb() -> int:
    """Process high-water RSS in KiB (0 where unavailable)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


def _run_one(spec: WorkloadSpec, *, quick: bool, repeats: int) -> Dict[str, Any]:
    walls: List[float] = []
    events = checksum = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        ev, ck = spec.run(quick)
        walls.append(time.perf_counter() - t0)
        if events is None:
            events, checksum = ev, ck
        elif (ev, ck) != (events, checksum):
            raise RuntimeError(
                f"workload {spec.name!r} is not deterministic across repeats: "
                f"({events}, {checksum}) vs ({ev}, {ck})"
            )
    best = min(walls)
    return {
        "events": events,
        "checksum": checksum,
        "wall_s": best,
        "wall_all_s": walls,
        "events_per_sec": events / best if best > 0 else 0.0,
        "peak_rss_kb": peak_rss_kb(),
        "config_hash": config_hash(spec.config(quick)),
        "repeats": len(walls),
    }


def run_benches(
    names: Optional[Sequence[str]] = None,
    *,
    quick: bool = False,
    repeats: int = DEFAULT_REPEATS,
    tag: str = "",
    log=None,
) -> Dict[str, Any]:
    """Execute the named workloads (default: all) and build a report dict."""
    specs: Iterable[WorkloadSpec]
    if names:
        unknown = [n for n in names if n not in WORKLOADS_BY_NAME]
        if unknown:
            raise KeyError(f"unknown workload(s): {', '.join(unknown)}")
        specs = [WORKLOADS_BY_NAME[n] for n in names]
    else:
        specs = WORKLOADS

    benches: Dict[str, Dict[str, Any]] = {}
    for spec in specs:
        if log:
            log(f"running {spec.name} ({'quick' if quick else 'full'}, x{repeats}) ...")
        benches[spec.name] = _run_one(spec, quick=quick, repeats=repeats)
        if log:
            b = benches[spec.name]
            log(f"  {spec.name}: {b['events_per_sec']:,.0f} events/s "
                f"({b['events']:,} events in {b['wall_s']:.3f}s)")
    return {
        "schema": SCHEMA_VERSION,
        "date": _dt.date.today().isoformat(),
        "timestamp": _dt.datetime.now().isoformat(timespec="seconds"),
        "tag": tag,
        "quick": quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "benches": benches,
    }


def write_bench_runlog(report: Dict[str, Any], path: Path) -> Path:
    """Write a bench report as a ``repro-runlog/1`` log.

    Manifest (``engine="bench"``) + one ``bench`` record per workload + a
    terminal ``summary``, so bench runs flow through the same tooling as
    experiment runs: ``repro obs summary`` renders the per-workload table,
    ``repro obs validate`` schema-checks it.
    """
    from repro._version import __version__
    from repro.obs.runlog import RunLogWriter

    benches = report.get("benches", {})
    config = {
        "workloads": sorted(benches),
        "quick": bool(report.get("quick")),
        "tag": report.get("tag", ""),
    }
    total_wall = sum(float(b.get("wall_s", 0.0)) for b in benches.values())
    total_events = sum(int(b.get("events", 0)) for b in benches.values())
    with RunLogWriter(path) as writer:
        writer.manifest(
            label=f"bench_{report.get('date', '')}"
            + (f"_{report['tag']}" if report.get("tag") else ""),
            config=config,
            config_hash=config_hash(config),
            repro_version=__version__,
            seed=0,
            engine="bench",
        )
        for name in benches:
            b = benches[name]
            writer.write(
                "bench",
                name=name,
                wall_s=b["wall_s"],
                events=b["events"],
                events_per_sec=b["events_per_sec"],
                checksum=b.get("checksum"),
                config_hash=b.get("config_hash"),
                repeats=b.get("repeats"),
            )
        writer.summary(
            status="ok",
            wall_s=total_wall,
            events=total_events,
            events_per_sec=total_events / total_wall if total_wall > 0 else 0.0,
            peak_rss_kb=peak_rss_kb(),
        )
    return Path(path)


def write_report(report: Dict[str, Any], out_dir: Path, *, tag: str = "") -> Path:
    """Write ``BENCH_<date>[_<tag>].json`` under ``out_dir``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = f"_{tag}" if tag else ""
    path = out_dir / f"BENCH_{report['date']}{suffix}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def find_baseline(out_dir: Path, *, exclude: Optional[Path] = None) -> Optional[Path]:
    """Most recently modified ``BENCH_*.json`` in ``out_dir`` (minus ``exclude``)."""
    out_dir = Path(out_dir)
    if not out_dir.is_dir():
        return None
    candidates = [
        p for p in out_dir.glob("BENCH_*.json")
        if exclude is None or p.resolve() != Path(exclude).resolve()
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def compare_reports(
    new: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Compare per-bench events/sec against a baseline.

    Returns ``(regressions, lines)``: human-readable problem descriptions
    (empty = gate passes) and a full comparison table.  Benches missing
    from either side or with mismatched config hashes are reported but
    never counted as regressions.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    regressions: List[str] = []
    lines: List[str] = []
    if bool(new.get("quick")) != bool(baseline.get("quick")):
        lines.append(
            "note: quick/full mode mismatch with baseline; nothing is comparable"
        )
        return regressions, lines
    old_benches = baseline.get("benches", {})
    for name, b in new.get("benches", {}).items():
        old = old_benches.get(name)
        if old is None:
            lines.append(f"{name}: new bench (no baseline)")
            continue
        if old.get("config_hash") != b.get("config_hash"):
            lines.append(f"{name}: config changed (hash {old.get('config_hash')} -> "
                         f"{b.get('config_hash')}); not comparable")
            continue
        old_eps = float(old.get("events_per_sec", 0.0))
        new_eps = float(b.get("events_per_sec", 0.0))
        ratio = new_eps / old_eps if old_eps > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: {new_eps:,.0f} events/s vs baseline {old_eps:,.0f} "
                f"({ratio:.2f}x, tolerance {1.0 - tolerance:.2f}x)"
            )
        lines.append(f"{name}: {new_eps:,.0f} vs {old_eps:,.0f} events/s "
                     f"({ratio:.2f}x) {verdict}")
    for name in old_benches:
        if name not in new.get("benches", {}):
            lines.append(f"{name}: present in baseline but not in this run")
    return regressions, lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also exposed as ``benchmarks/harness.py`` and
    ``repro bench``).  Exit code 1 signals a gated regression."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the pinned-seed benchmark suite and gate on regressions.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="shrunken workloads (CI smoke; not comparable to full runs)")
    parser.add_argument("--only", metavar="NAME[,NAME...]",
                        help="run a subset of workloads")
    parser.add_argument("--list", action="store_true", help="list workloads and exit")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help=f"timed repeats per bench, best-of (default {DEFAULT_REPEATS})")
    parser.add_argument("--tag", default="", help="suffix for the report filename")
    parser.add_argument("--out-dir", type=Path, default=Path("benchmarks/results"),
                        help="where BENCH_*.json reports live (default benchmarks/results)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline report to compare against "
                             "(default: newest BENCH_*.json in --out-dir)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help=f"relative events/sec regression budget (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--no-gate", action="store_true",
                        help="report the comparison but always exit 0")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing the report file")
    parser.add_argument("--runlog", type=Path, default=None, metavar="PATH",
                        help="also write the report as a repro-runlog/1 JSONL "
                             "log (queryable via 'repro obs summary')")
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        print(f"error: --tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2

    if args.list:
        for spec in WORKLOADS:
            print(f"{spec.name}: {spec.params}")
        return 0

    names = [n.strip() for n in args.only.split(",")] if args.only else None
    try:
        report = run_benches(names, quick=args.quick, repeats=args.repeats,
                             tag=args.tag, log=lambda m: print(m, flush=True))
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.runlog is not None:
        print(f"run log written to {write_bench_runlog(report, args.runlog)}")

    baseline_path = args.baseline or find_baseline(args.out_dir)
    out_path = None
    if not args.no_write:
        out_path = write_report(report, args.out_dir, tag=args.tag)
        print(f"report written to {out_path}")
        # Never compare a report against itself (same date + tag overwrite).
        if baseline_path is not None and args.baseline is None:
            baseline_path = find_baseline(args.out_dir, exclude=out_path)

    if baseline_path is None:
        print("no baseline found; skipping regression gate")
        return 0
    try:
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    print(f"comparing against {baseline_path} (tolerance {args.tolerance:.0%})")
    regressions, lines = compare_reports(report, baseline, tolerance=args.tolerance)
    for line in lines:
        print("  " + line)
    if regressions:
        print(f"{len(regressions)} regression(s) detected", file=sys.stderr)
        return 0 if args.no_gate else 1
    print("no regressions")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
