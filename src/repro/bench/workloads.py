"""Pinned-seed benchmark workloads.

Each workload is a pure function of its :class:`WorkloadSpec` parameters:
same spec, same seeds, same simulated work — so the "events" count it
returns is deterministic, and wall time is the only thing that varies
between runs.  ``benchmarks/bench_engine.py`` times the same functions
under pytest-benchmark; :mod:`repro.bench.harness` times them for the
regression gate.

A workload returns ``(events, checksum)``: ``events`` is the unit the
events/sec throughput metric counts (simulator events, fluid steps);
``checksum`` is a cheap determinism witness the harness verifies across
repeats (a drift here means a workload stopped being pinned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

#: Quick mode shrinks every workload by this factor (CI smoke runs).
QUICK_FACTOR = 8


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload plus the parameters that pin it."""

    name: str
    fn: Callable[..., Tuple[int, int]]
    params: Dict[str, Any] = field(default_factory=dict)
    quick_params: Dict[str, Any] = field(default_factory=dict)

    def run(self, quick: bool = False) -> Tuple[int, int]:
        """Execute once; returns (events, checksum)."""
        return self.fn(**(self.quick_params if quick else self.params))

    def config(self, quick: bool = False) -> Dict[str, Any]:
        """The parameter dict that pins this workload (for config hashing)."""
        params = self.quick_params if quick else self.params
        return {"workload": self.name, "quick": quick, **params}


# --- engine microbenchmarks ----------------------------------------------------


def event_loop(count: int) -> Tuple[int, int]:
    """Schedule+dispatch cost of the bare event loop."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def noop() -> None:
        pass

    for i in range(count):
        sim.schedule(i, noop)
    sim.run()
    return sim.events_processed, sim.now


def timer_churn(count: int) -> Tuple[int, int]:
    """Cancel/reschedule pattern of TCP retransmission timers."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    state = {"handle": None, "fired": 0}

    def tick(i: int) -> None:
        state["fired"] += 1
        if state["handle"] is not None:
            state["handle"].cancel()
        if i < count:
            state["handle"] = sim.schedule(1000, tick, i + 1)

    sim.schedule(0, tick, 0)
    sim.run()
    return sim.events_processed, state["fired"]


def single_flow_datapath(duration_s: float, bw_mbps: float = 20.0) -> Tuple[int, int]:
    """Full-stack packets/second: one CUBIC flow over the dumbbell."""
    from repro.cca.registry import make_cca
    from repro.tcp.connection import open_connection
    from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
    from repro.units import mbps, seconds

    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(bw_mbps), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500, flow_id=1)
    conn.start()
    db.network.run(seconds(duration_s))
    return db.sim.events_processed, conn.receiver.bytes_received


def datapath_obs_disabled(duration_s: float, bw_mbps: float = 20.0) -> Tuple[int, int]:
    """``single_flow_datapath`` with disabled telemetry wired in.

    Regression gate for the telemetry subsystem's core promise: wiring a
    *disabled* registry plus the null tracer into the full stack must not
    slow the datapath.  Compare this row against ``single_flow_datapath``
    in the same report — the events/sec should match within noise, and the
    baseline comparison catches anyone sneaking per-packet work into the
    disabled path.
    """
    from repro.cca.registry import make_cca
    from repro.obs.instrument import instrument_experiment
    from repro.obs.metrics import MetricsRegistry
    from repro.tcp.connection import open_connection
    from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
    from repro.units import mbps, seconds

    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(bw_mbps), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500, flow_id=1)
    registry = MetricsRegistry(enabled=False)
    instrument_experiment(registry, db, [conn.sender], cwnd_interval_ns=None)
    conn.start()
    db.network.run(seconds(duration_s))
    return db.sim.events_processed, conn.receiver.bytes_received


def datapath_spans_disabled(duration_s: float, bw_mbps: float = 20.0) -> Tuple[int, int]:
    """``single_flow_datapath`` run through the disabled span/profiler plumbing.

    Companion gate to ``datapath_obs_disabled`` for the tracing subsystem:
    the run is wrapped in NULL-tracer phase spans exactly the way the
    experiment runner wraps it, with ``sim.profiler`` left at ``None``, so
    the events/sec must match ``single_flow_datapath`` within noise — any
    per-event cost sneaking into the disabled path shows up here.
    """
    from repro.cca.registry import make_cca
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.instrument import instrument_experiment
    from repro.obs.spans import CAT_RUN, NULL_SPAN_TRACER
    from repro.tcp.connection import open_connection
    from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
    from repro.units import mbps, seconds

    spans = NULL_SPAN_TRACER
    run_span = spans.start("run", CAT_RUN, labels={"bench": True})
    with spans.span("setup"):
        db = build_dumbbell(
            DumbbellConfig(bottleneck_bw_bps=mbps(bw_mbps), buffer_bdp=2.0,
                           mss_bytes=1500, seed=1)
        )
        conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"),
                               mss=1500, flow_id=1)
        instrument_experiment(MetricsRegistry(enabled=False), db, [conn.sender],
                              cwnd_interval_ns=None)
        conn.start()
    assert db.sim.profiler is None  # the plain (unprofiled) loop must run
    with spans.span("transfer"):
        db.network.run(seconds(duration_s))
    run_span.close()
    return db.sim.events_processed, conn.receiver.bytes_received


def datapath_fairness_disabled(duration_s: float, bw_mbps: float = 20.0) -> Tuple[int, int]:
    """``single_flow_datapath`` with the fairness probe left disabled.

    Companion gate to ``datapath_obs_disabled`` / ``datapath_spans_disabled``
    for the fairness observatory: ``instrument_packet_fairness`` is called
    exactly the way the experiment runner calls it, with the cadence left at
    ``None``, so it must return ``None`` and schedule nothing — the
    events/sec must match ``single_flow_datapath`` within noise.  Any
    per-packet or per-event cost sneaking into the disabled path shows up
    here against the baseline.
    """
    from repro.cca.registry import make_cca
    from repro.obs.fairness import instrument_packet_fairness
    from repro.tcp.connection import open_connection
    from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
    from repro.units import mbps, seconds

    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(bw_mbps), buffer_bdp=2.0, mss_bytes=1500, seed=1)
    )
    conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500, flow_id=1)
    sampler = instrument_packet_fairness(
        db.sim,
        db.bottleneck_qdisc,
        db.config.scaled_bottleneck_bps,
        [(1, 0, lambda: conn.receiver.bytes_received)],
        None,
    )
    assert sampler is None  # disabled probe must not touch the event loop
    conn.start()
    db.network.run(seconds(duration_s))
    return db.sim.events_processed, conn.receiver.bytes_received


def contended_datapath_aqm(duration_s: float, aqm: str, bw_mbps: float = 20.0) -> Tuple[int, int]:
    """Two competing flows (BBRv1 vs CUBIC) through a non-trivial AQM.

    Exercises the per-packet AQM enqueue/dequeue path plus pacing — the
    parts of the hot path the single-flow FIFO bench barely touches.
    """
    from repro.cca.registry import make_cca
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_packet_experiment

    cfg = ExperimentConfig(
        cca_pair=("bbrv1", "cubic"),
        aqm=aqm,
        buffer_bdp=2.0,
        bottleneck_bw_bps=bw_mbps * 1e6,
        duration_s=duration_s,
        mss_bytes=1500,
        seed=1,
        flows_per_node=1,
    )
    result = run_packet_experiment(cfg)
    return result.events_processed, int(result.total_throughput_bps)


def fluid_steps(duration_s: float, n_flows: int = 500) -> Tuple[int, int]:
    """Fluid-engine steps/second with a large flow population."""
    import numpy as np

    from repro.fluid.aqm_rules import FluidFifo
    from repro.fluid.cca_rules import make_fluid_cca
    from repro.fluid.model import FluidSimulation

    rng = np.random.default_rng(1)
    flows = [make_fluid_cca("cubic", rng) for _ in range(n_flows)]
    aqm = FluidFifo(limit_pkts=43_000, capacity_pps=350_000, n_flows=n_flows)
    sim = FluidSimulation(
        capacity_pps=350_000, base_rtt_s=0.062, aqm=aqm, flows=flows, arrival_rng=rng
    )
    sim.run(duration_s)
    steps = int(round(duration_s / sim.dt))
    return steps * n_flows, int(sim.delivered_total.sum())


def fluid_batched_shard(duration_s: float, n_seeds: int = 3, flows_per_node: int = 10) -> Tuple[int, int]:
    """Batched fluid backend: one lock-step shard of many configs.

    Builds a homogeneous shard (4 CCA pairs x ``n_seeds`` seeds, all FIFO
    at 1 Gbps) and advances it as a single stacked integration — the
    campaign fast path for ``engine="fluid_batched"``.  Events are
    lane-steps (steps x configs x flows), the batched analogue of
    ``fluid_steps``, so the two rows are directly comparable per lane.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.fluid.batched import BatchedFluidSimulation

    pairs = (("cubic", "cubic"), ("bbrv1", "cubic"), ("reno", "htcp"), ("bbrv2", "bbrv2"))
    configs = [
        ExperimentConfig(
            cca_pair=pair,
            aqm="fifo",
            buffer_bdp=2.0,
            bottleneck_bw_bps=1e9,
            duration_s=duration_s,
            mss_bytes=8900,
            seed=seed,
            engine="fluid_batched",
            flows_per_node=flows_per_node,
        )
        for pair in pairs
        for seed in range(1, n_seeds + 1)
    ]
    sim = BatchedFluidSimulation(configs)
    sim.run(duration_s)
    steps = int(round(duration_s / sim.dt))
    n_configs, width = sim.delivered_total.shape
    return steps * n_configs * width, int(sim.delivered_total.sum())


#: The harness registry.  Order is the execution/report order.
WORKLOADS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        "event_loop",
        event_loop,
        params={"count": 200_000},
        quick_params={"count": 200_000 // QUICK_FACTOR},
    ),
    WorkloadSpec(
        "timer_churn",
        timer_churn,
        params={"count": 50_000},
        quick_params={"count": 50_000 // QUICK_FACTOR},
    ),
    WorkloadSpec(
        "single_flow_datapath",
        single_flow_datapath,
        params={"duration_s": 5.0},
        quick_params={"duration_s": 5.0 / QUICK_FACTOR},
    ),
    WorkloadSpec(
        "datapath_obs_disabled",
        datapath_obs_disabled,
        params={"duration_s": 5.0},
        quick_params={"duration_s": 5.0 / QUICK_FACTOR},
    ),
    WorkloadSpec(
        "datapath_spans_disabled",
        datapath_spans_disabled,
        params={"duration_s": 5.0},
        quick_params={"duration_s": 5.0 / QUICK_FACTOR},
    ),
    WorkloadSpec(
        "datapath_fairness_disabled",
        datapath_fairness_disabled,
        params={"duration_s": 5.0},
        quick_params={"duration_s": 5.0 / QUICK_FACTOR},
    ),
    WorkloadSpec(
        "contended_fq_codel",
        contended_datapath_aqm,
        params={"duration_s": 3.0, "aqm": "fq_codel"},
        quick_params={"duration_s": 3.0 / QUICK_FACTOR, "aqm": "fq_codel"},
    ),
    WorkloadSpec(
        "contended_red",
        contended_datapath_aqm,
        params={"duration_s": 3.0, "aqm": "red"},
        quick_params={"duration_s": 3.0 / QUICK_FACTOR, "aqm": "red"},
    ),
    WorkloadSpec(
        "fluid_steps",
        fluid_steps,
        params={"duration_s": 5.0},
        quick_params={"duration_s": 5.0 / QUICK_FACTOR},
    ),
    WorkloadSpec(
        "fluid_batched_shard",
        fluid_batched_shard,
        params={"duration_s": 5.0},
        quick_params={"duration_s": 5.0 / QUICK_FACTOR},
    ),
)

WORKLOADS_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in WORKLOADS}
