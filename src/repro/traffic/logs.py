"""Reading/writing iperf3-style JSON logs.

The paper publishes its raw iperf3 logs; these helpers produce and consume
the same document shape so downstream tooling (and
:mod:`repro.analysis.parse_iperf`) can be exercised against files on disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

PathLike = Union[str, Path]


def dump_iperf_json(result: Dict[str, Any], path: PathLike) -> Path:
    """Write one iperf3-shaped result document to ``path``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return p


def load_iperf_json(path: PathLike) -> Dict[str, Any]:
    """Read an iperf3 JSON document, validating its basic shape."""
    with Path(path).open("r", encoding="utf-8") as fh:
        doc = json.load(fh)
    for key in ("start", "intervals", "end"):
        if key not in doc:
            raise ValueError(f"{path}: not an iperf3 JSON document (missing {key!r})")
    return doc
