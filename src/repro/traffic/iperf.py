"""An iperf3-shaped traffic generator.

The paper drives its transfers with iperf3 processes (Table 2: up to 25
processes per node x 10 parallel streams).  :class:`Iperf3Client` mirrors
the tool's observable behaviour: one client owns ``parallel`` streams
(TCP connections with the chosen congestion control), runs for a fixed
duration, samples per-interval rates, and renders a result dict with the
same overall shape as ``iperf3 --json`` output (start / intervals / end),
which :mod:`repro.analysis.parse_iperf` consumes.

A server must be listening on the destination host first — like the real
tool, a client pointed at a host with no server errors out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cca.registry import canonical_cca_name, make_cca
from repro.net.node import Host
from repro.sim.engine import Simulator
from repro.tcp.connection import Connection, open_connection
from repro.units import NS_PER_SEC, seconds

IPERF_VERSION_STRING = "iperf 3.7-sim (repro)"
DEFAULT_INTERVAL_S = 1.0


class Iperf3Server:
    """The listening side; tracks which hosts accept connections."""

    _registry: Dict[int, "Iperf3Server"] = {}

    def __init__(self, host: Host, port: int = 5201):
        key = (id(host.sim), id(host), port)
        self.host = host
        self.port = port
        self._key = hash(key)
        if self._key in Iperf3Server._registry:
            raise RuntimeError(f"a server is already listening on {host.name}:{port}")
        Iperf3Server._registry[self._key] = self

    def close(self) -> None:
        """Stop listening (frees the host:port for a new server)."""
        Iperf3Server._registry.pop(self._key, None)

    @classmethod
    def is_listening(cls, host: Host, port: int) -> bool:
        return hash((id(host.sim), id(host), port)) in cls._registry

    @classmethod
    def reset_registry(cls) -> None:
        cls._registry.clear()


@dataclass
class StreamResult:
    """Per-stream totals, mirroring iperf3's end.streams entries."""

    stream_id: int
    bytes_received: int
    retransmits: int
    throughput_bps: float
    intervals_bps: List[float] = field(default_factory=list)


class Iperf3Client:
    """One iperf3 process: N parallel streams from client to server."""

    def __init__(
        self,
        client: Host,
        server: Host,
        *,
        congestion: str = "cubic",
        parallel: int = 1,
        duration_s: float = 10.0,
        mss: int = 1500,
        port: int = 5201,
        interval_s: float = DEFAULT_INTERVAL_S,
        ecn: bool = False,
        cca_rng=None,
    ):
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not Iperf3Server.is_listening(server, port):
            raise ConnectionRefusedError(
                f"no iperf3 server listening on {server.name}:{port}"
            )
        self.client = client
        self.server = server
        self.congestion = canonical_cca_name(congestion)
        self.parallel = parallel
        self.duration_s = duration_s
        self.mss = mss
        self.port = port
        self.interval_s = interval_s
        self.ecn = ecn
        self._cca_rng = cca_rng
        self.connections: List[Connection] = []
        self._interval_marks: List[int] = []
        self._interval_bytes: Dict[int, List[int]] = {}
        self._started = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self, delay_ns: int = 0) -> None:
        """Open all streams and schedule interval sampling + shutdown."""
        if self._started:
            raise RuntimeError("client already started")
        self._started = True
        sim: Simulator = self.client.sim
        for _ in range(self.parallel):
            conn = open_connection(
                self.client,
                self.server,
                make_cca(self.congestion, self._cca_rng),
                mss=self.mss,
                ecn_enabled=self.ecn,
            )
            conn.start(delay_ns)
            self.connections.append(conn)
            self._interval_bytes[conn.flow_id] = [0]
        sim.schedule(delay_ns + seconds(self.interval_s), self._interval_tick)
        sim.schedule(delay_ns + seconds(self.duration_s), self._finish)

    def _interval_tick(self) -> None:
        # Note: the final tick shares a timestamp with _finish and may run
        # after it; it must still record the last interval.
        self._interval_marks.append(self.client.sim.now)
        for conn in self.connections:
            self._interval_bytes[conn.flow_id].append(conn.receiver.bytes_received)
        if len(self._interval_marks) * self.interval_s < self.duration_s:
            self.client.sim.schedule(seconds(self.interval_s), self._interval_tick)

    def _finish(self) -> None:
        for conn in self.connections:
            conn.stop()
        self._started = False

    # -- results --------------------------------------------------------------------

    def stream_results(self) -> List[StreamResult]:
        """Per-stream totals and per-interval rates."""
        out: List[StreamResult] = []
        for conn in self.connections:
            marks = self._interval_bytes[conn.flow_id]
            intervals = [
                (b - a) * 8 / self.interval_s for a, b in zip(marks, marks[1:])
            ]
            out.append(
                StreamResult(
                    stream_id=conn.flow_id,
                    bytes_received=conn.receiver.bytes_received,
                    retransmits=conn.sender.retransmits,
                    throughput_bps=conn.receiver.bytes_received * 8 / self.duration_s,
                    intervals_bps=intervals,
                )
            )
        return out

    def json_result(self) -> Dict[str, Any]:
        """An iperf3 ``--json``-shaped result document."""
        streams = self.stream_results()
        n_intervals = max((len(s.intervals_bps) for s in streams), default=0)
        intervals_doc = []
        for i in range(n_intervals):
            per_stream = []
            for s in streams:
                bps = s.intervals_bps[i] if i < len(s.intervals_bps) else 0.0
                per_stream.append(
                    {
                        "socket": s.stream_id,
                        "start": i * self.interval_s,
                        "end": (i + 1) * self.interval_s,
                        "seconds": self.interval_s,
                        "bytes": int(bps * self.interval_s / 8),
                        "bits_per_second": bps,
                    }
                )
            total_bps = sum(p["bits_per_second"] for p in per_stream)
            intervals_doc.append(
                {
                    "streams": per_stream,
                    "sum": {
                        "start": i * self.interval_s,
                        "end": (i + 1) * self.interval_s,
                        "seconds": self.interval_s,
                        "bytes": int(total_bps * self.interval_s / 8),
                        "bits_per_second": total_bps,
                    },
                }
            )
        total_bytes = sum(s.bytes_received for s in streams)
        total_retx = sum(s.retransmits for s in streams)
        return {
            "start": {
                "version": IPERF_VERSION_STRING,
                "test_start": {
                    "protocol": "TCP",
                    "num_streams": self.parallel,
                    "duration": self.duration_s,
                    "congestion": self.congestion,
                    "mss": self.mss,
                },
                "connecting_to": {"host": self.server.name, "port": self.port},
            },
            "intervals": intervals_doc,
            "end": {
                "streams": [
                    {
                        "sender": {
                            "socket": s.stream_id,
                            "bytes": s.bytes_received,
                            "bits_per_second": s.throughput_bps,
                            "retransmits": s.retransmits,
                        },
                        "receiver": {
                            "socket": s.stream_id,
                            "bytes": s.bytes_received,
                            "bits_per_second": s.throughput_bps,
                        },
                    }
                    for s in streams
                ],
                "sum_sent": {
                    "bytes": total_bytes,
                    "bits_per_second": total_bytes * 8 / self.duration_s,
                    "retransmits": total_retx,
                },
                "sum_received": {
                    "bytes": total_bytes,
                    "bits_per_second": total_bytes * 8 / self.duration_s,
                },
            },
        }
