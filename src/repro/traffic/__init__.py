"""iperf3-style traffic generation and logging."""

from repro.traffic.iperf import Iperf3Client, Iperf3Server, StreamResult
from repro.traffic.logs import dump_iperf_json, load_iperf_json
from repro.traffic.mice import MouseRecord, PoissonMice

__all__ = [
    "Iperf3Server",
    "Iperf3Client",
    "StreamResult",
    "dump_iperf_json",
    "load_iperf_json",
    "PoissonMice",
    "MouseRecord",
]
