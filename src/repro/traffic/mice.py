"""Mice: short commercial-style flows mixed in with the elephants.

The paper's motivation contrasts science networks ("elephant flows are
very common ... which is not as common in commercial networks") with
commercial traffic.  :class:`PoissonMice` generates that commercial
background: short fixed-size transfers arriving as a Poisson process,
each a complete TCP connection.  Mixing them with elephant flows
exercises exactly the property FQ_CoDel's new-queue priority exists for
— sparse flows finishing fast regardless of the elephants' buffer
occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cca.registry import make_cca
from repro.net.node import Host
from repro.sim.engine import Simulator
from repro.tcp.connection import Connection, open_connection
from repro.units import NS_PER_SEC


@dataclass
class MouseRecord:
    """Outcome of one short transfer."""

    flow_id: int
    start_ns: int
    size_segments: int
    #: Completion time (ns since start), or None if unfinished at stop.
    fct_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.fct_ns is not None


class PoissonMice:
    """Spawn ``size_segments``-long flows at ``rate_per_s`` (Poisson)."""

    def __init__(
        self,
        src: Host,
        dst: Host,
        *,
        rate_per_s: float,
        size_segments: int,
        mss: int,
        rng: np.random.Generator,
        cca: str = "cubic",
        max_flows: Optional[int] = None,
    ):
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        if size_segments <= 0:
            raise ValueError(f"flow size must be positive, got {size_segments}")
        self.src = src
        self.dst = dst
        self.sim: Simulator = src.sim
        self.rate_per_s = rate_per_s
        self.size_segments = size_segments
        self.mss = mss
        self.rng = rng
        self.cca = cca
        self.max_flows = max_flows
        self.records: List[MouseRecord] = []
        self._live: List[Connection] = []
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm the Poisson arrival process."""
        self._schedule_next()

    def stop(self) -> None:
        """Stop spawning and halt unfinished mice."""
        self._stopped = True
        for conn in self._live:
            conn.stop()

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        if self.max_flows is not None and len(self.records) >= self.max_flows:
            return
        gap_ns = int(self.rng.exponential(1.0 / self.rate_per_s) * NS_PER_SEC)
        self.sim.schedule(max(1, gap_ns), self._spawn)

    def _spawn(self) -> None:
        if self._stopped:
            return
        conn = open_connection(
            self.src, self.dst, make_cca(self.cca, self.rng),
            mss=self.mss, total_segments=self.size_segments,
        )
        record = MouseRecord(
            flow_id=conn.flow_id, start_ns=self.sim.now, size_segments=self.size_segments
        )
        self.records.append(record)
        self._live.append(conn)
        self._watch(conn, record)
        conn.start()
        self._schedule_next()

    def _watch(self, conn: Connection, record: MouseRecord) -> None:
        """Poll for completion (cheap: one event per 10 ms per live mouse)."""
        if conn.sender.done:
            record.fct_ns = self.sim.now - record.start_ns
            self._live.remove(conn)
            conn.stop()
            return
        if not self._stopped:
            self.sim.schedule(10_000_000, self._watch, conn, record)

    # -- results -----------------------------------------------------------------

    @property
    def completed(self) -> List[MouseRecord]:
        return [r for r in self.records if r.completed]

    def fct_stats_ns(self) -> dict:
        """Flow-completion-time summary over completed mice."""
        fcts = sorted(r.fct_ns for r in self.completed)
        if not fcts:
            return {"count": 0}
        return {
            "count": len(fcts),
            "mean": sum(fcts) / len(fcts),
            "p50": fcts[len(fcts) // 2],
            "p95": fcts[min(len(fcts) - 1, int(len(fcts) * 0.95))],
            "max": fcts[-1],
        }
