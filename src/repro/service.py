"""``repro serve`` — the async fairness-query front-end of the sweep service.

A small asyncio HTTP server (stdlib only, HTTP/1.1, one request per
connection) that answers what-if fairness questions from the
content-addressed :class:`~repro.experiments.cache.ResultCache`, or
schedules the run when the config has never been computed:

    GET  /healthz   liveness + cache entry count
    GET  /stats     cache + service counters as JSON
    GET  /metrics   Prometheus text exposition (cache hit/miss/engine-run
                    counters, in-flight gauge, latency histogram)
    POST /query     body = an ``ExperimentConfig`` dict, or a scenario IR
                    document (docs/SCENARIO.md) under ``"scenario"`` with
                    an optional sibling ``"engine"``; responds with the
                    fairness headline (Jain / φ / RR, plus convergence and
                    the full dynamics series from ``extra["fairness"]``
                    when the config samples them) and ``"cached"`` telling
                    whether an engine ran.  ``{"full": true}`` inlines the
                    complete result dict.  Both dialects compile to one
                    canonical config, so they share cache entries.

Concurrency: identical in-flight queries are *single-flighted* — the
second asker awaits the first run instead of scheduling a duplicate —
and engine runs execute in a thread pool so the event loop stays
responsive.  Completed runs are put back into the service's cache shard,
so the next ask is a hit.

Observability: the service reuses the existing plumbing — the metrics
page is rendered by :func:`repro.obs.export.to_prometheus`, and with
``telemetry_dir`` set every scheduled run appends a
``campaign_progress`` record to ``campaign.jsonl`` exactly like a sweep,
so ``repro obs tail`` works unchanged.  See docs/SERVICE.md.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.campaign import CampaignProgress
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.summary import ExperimentResult
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry

#: Request body size cap (a config dict is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Latency buckets in seconds: service answers span cache-lookup
#: microseconds to multi-second engine runs.
LATENCY_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)


class BadRequest(ValueError):
    """Client-side error; rendered as a clean HTTP 400 JSON body."""


class SweepService:
    """Cache-first fairness query service over one :class:`ResultCache`."""

    def __init__(
        self,
        cache: ResultCache,
        *,
        jobs: int = 1,
        telemetry_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.cache = cache
        self.registry = registry if registry is not None else MetricsRegistry(True)
        self._inflight: Dict[str, asyncio.Future] = {}
        self._scheduled = 0
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=max(1, jobs), thread_name_prefix="repro-serve"
        )
        self._progress: Optional[CampaignProgress] = None
        if telemetry_dir is not None:
            self._progress = CampaignProgress(
                Path(telemetry_dir) / "campaign.jsonl", quiet=True
            )
        r = self.registry
        self.requests = r.counter(
            "service_requests_total", "HTTP requests accepted by repro serve"
        )
        self.errors = r.counter(
            "service_errors_total", "Requests that ended in a 4xx/5xx response"
        )
        self.cache_hits = r.counter(
            "service_cache_hits_total",
            "Queries answered from the content-addressed result cache",
            fn=lambda: self.cache.hits,
        )
        self.cache_misses = r.counter(
            "service_cache_misses_total",
            "Queries that found no cached result",
            fn=lambda: self.cache.misses,
        )
        self.engine_runs = r.counter(
            "service_engine_runs_total",
            "Experiment runs scheduled because the cache missed",
            fn=lambda: self._scheduled,
        )
        r.gauge(
            "service_cache_entries",
            "Results currently indexed by the cache",
            fn=lambda: len(self.cache),
        )
        self.inflight = r.gauge(
            "service_inflight_runs", "Engine runs currently executing"
        )
        self.latency = r.histogram(
            "service_request_latency_seconds",
            "Wall-clock time to answer a query",
            buckets=LATENCY_BUCKETS,
        )

    # -- query path ---------------------------------------------------------------

    #: Request-envelope keys that are not part of a config/scenario body.
    _ENVELOPE_KEYS = ("full", "engine", "scenario", "config")

    def _parse_config(self, body: Dict[str, Any]) -> ExperimentConfig:
        """Accept either config dialect and lower both to one key space.

        Legacy: an ``ExperimentConfig`` dict (recognized by ``cca_pair``),
        bare or under ``"config"``.  IR: a scenario document
        (docs/SCENARIO.md) under ``"scenario"`` — or bare/under
        ``"config"``, recognized by its ``topology``/``flows`` fields —
        with the backend named by a sibling ``"engine"`` (default
        ``packet``).  Both dialects compile to the same canonical config,
        so they hit the same cache entries; schema violations surface as
        HTTP 400s carrying the IR's dotted field path.
        """
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        engine = body.get("engine", "packet")
        if not isinstance(engine, str):
            raise BadRequest(f"'engine' must be a string, got {engine!r}")
        scenario_doc = body.get("scenario")
        if scenario_doc is None:
            candidate = body.get("config", body)
            if isinstance(candidate, dict) and (
                "topology" in candidate or "flows" in candidate
            ):
                scenario_doc = {
                    k: v for k, v in candidate.items() if k not in self._ENVELOPE_KEYS
                }
        if scenario_doc is not None:
            from repro.scenario import Scenario, ScenarioError

            if not isinstance(scenario_doc, dict):
                raise BadRequest(
                    "'scenario' must be a scenario IR object (docs/SCENARIO.md)"
                )
            try:
                scenario = Scenario.from_dict(scenario_doc)
                return scenario.to_experiment_config(
                    engine=engine.replace("-", "_")
                )
            except ScenarioError as exc:
                raise BadRequest(f"invalid scenario: {exc}") from None
        config_dict = body.get("config", body)
        if not isinstance(config_dict, dict) or "cca_pair" not in config_dict:
            raise BadRequest(
                "missing experiment config (need at least 'cca_pair'); send "
                "an ExperimentConfig dict or a scenario IR document under "
                "'scenario', optionally with 'engine'"
            )
        config_dict = {k: v for k, v in config_dict.items() if k != "full"}
        try:
            return ExperimentConfig.from_dict(config_dict)
        except (TypeError, ValueError, KeyError, IndexError) as exc:
            raise BadRequest(f"invalid experiment config: {exc}") from None

    async def answer(self, config: ExperimentConfig, *, full: bool = False) -> Dict[str, Any]:
        """Fairness answer for one config: cache hit, or schedule the run."""
        cached = self.cache.get(config)
        if cached is not None:
            return self._render(config, cached, cached=True, full=full)
        result = await self._compute(config)
        return self._render(config, result, cached=False, full=full)

    async def _compute(self, config: ExperimentConfig) -> ExperimentResult:
        """Run the engine once per key, however many askers are waiting."""
        key = self.cache.key_for(config)
        future = self._inflight.get(key)
        if future is None:
            loop = asyncio.get_running_loop()
            self._scheduled += 1
            self.inflight.set(len(self._inflight) + 1)
            future = loop.run_in_executor(self._executor, run_experiment, config)
            self._inflight[key] = future
            try:
                result = await future
            finally:
                self._inflight.pop(key, None)
                self.inflight.set(len(self._inflight))
            self.cache.put(result)
            if self._progress is not None:
                n = self._scheduled
                self._progress(n, n, result)
            return result
        return await asyncio.shield(future)

    def _render(
        self,
        config: ExperimentConfig,
        result: ExperimentResult,
        *,
        cached: bool,
        full: bool,
    ) -> Dict[str, Any]:
        fairness = (
            result.extra.get("fairness") if isinstance(result.extra, dict) else None
        )
        payload: Dict[str, Any] = {
            "label": config.label(),
            "key": self.cache.key_for(config),
            "cached": cached,
            "engine": result.engine,
            "jain_index": result.jain_index,
            "flow_jain_index": (
                result.extra.get("flow_jain_index")
                if isinstance(result.extra, dict)
                else None
            ),
            "link_utilization": result.link_utilization,
            "total_retransmits": result.total_retransmits,
            "total_throughput_bps": result.total_throughput_bps,
            "fairness": fairness,
            "convergence_time_s": (
                fairness.get("convergence_time_s") if fairness else None
            ),
        }
        if full:
            payload["result"] = result.to_dict()
        return payload

    # -- HTTP plumbing ------------------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """One HTTP/1.1 request/response exchange, then close."""
        t0 = time.perf_counter()
        self.requests.inc()
        try:
            method, path, body = await _read_request(reader)
            status, ctype, payload = await self._dispatch(method, path, body)
        except BadRequest as exc:
            self.errors.inc()
            status, ctype, payload = 400, "application/json", json.dumps(
                {"error": str(exc)}
            )
        except Exception as exc:  # pragma: no cover - defensive 500 path
            self.errors.inc()
            status, ctype, payload = 500, "application/json", json.dumps(
                {"error": f"internal error: {exc!r}"}
            )
        try:
            _write_response(writer, status, ctype, payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        self.latency.observe(time.perf_counter() - t0)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, str]:
        route = path.split("?", 1)[0]
        if method == "GET" and route == "/healthz":
            return 200, "application/json", json.dumps(
                {"ok": True, "entries": len(self.cache), "salt": self.cache.salt}
            )
        if method == "GET" and route == "/stats":
            stats = dict(self.cache.stats())
            stats["scheduled_runs"] = self._scheduled
            stats["requests"] = int(self.requests.value)
            return 200, "application/json", json.dumps(stats, sort_keys=True)
        if method == "GET" and route == "/metrics":
            return 200, "text/plain; version=0.0.4", to_prometheus(self.registry)
        if method == "POST" and route == "/query":
            try:
                parsed = json.loads(body.decode("utf-8") or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise BadRequest(f"request body is not valid JSON: {exc}") from None
            config = self._parse_config(parsed)
            full = bool(isinstance(parsed, dict) and parsed.get("full")) or (
                "full=1" in path
            )
            payload = await self.answer(config, full=full)
            return 200, "application/json", json.dumps(payload, sort_keys=True)
        self.errors.inc()
        return 404, "application/json", json.dumps(
            {"error": f"no route {method} {route}; see docs/SERVICE.md"}
        )

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.AbstractServer:
        """Bind and return the server (``port=0`` picks a free port)."""
        return await asyncio.start_server(self.handle, host, port)

    def close(self) -> None:
        """Release the executor, cache shard handle, and progress log."""
        self._executor.shutdown(wait=False)
        self.cache.close()
        if self._progress is not None:
            self._progress.close()
            self._progress = None


async def _read_request(reader: asyncio.StreamReader) -> Tuple[str, str, bytes]:
    """Parse one HTTP/1.1 request: (method, target, body)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        raise BadRequest("truncated or oversized HTTP request head") from None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise BadRequest(f"bad Content-Length: {value.strip()!r}") from None
    if length > MAX_BODY_BYTES:
        raise BadRequest(f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, body


def _write_response(
    writer: asyncio.StreamWriter, status: int, ctype: str, payload: str
) -> None:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}
    data = payload.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(data)}\r\n"
        "Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + data)


async def _serve_forever(service: SweepService, host: str, port: int) -> None:
    server = await service.start(host, port)
    addr = server.sockets[0].getsockname()
    print(f"repro serve: listening on http://{addr[0]}:{addr[1]} "
          f"(cache: {service.cache.dir}, {len(service.cache)} entries)", flush=True)
    async with server:
        await server.serve_forever()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve fairness queries from the content-addressed result cache",
    )
    parser.add_argument("--cache", required=True, help="result cache root directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8351)
    parser.add_argument(
        "--jobs", type=int, default=1, help="concurrent engine runs for cold queries"
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        help="append campaign_progress records for scheduled runs to "
        "DIR/campaign.jsonl (repro obs tail compatible)",
    )
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache, worker=f"serve{os.getpid()}")
    service = SweepService(
        cache, jobs=args.jobs, telemetry_dir=args.telemetry_dir
    )
    try:
        asyncio.run(_serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        service.close()
    return 0
