"""BBR version 1 (Cardwell et al. 2017; Linux tcp_bbr.c).

Model-based: estimates bottleneck bandwidth (windowed max of delivery-rate
samples over 10 rounds) and min RTT (windowed min over 10 s), paces at
``pacing_gain * BtlBw`` and caps inflight at ``cwnd_gain * BDP`` (the
2 x BDP inflight cap the paper leans on to explain FIFO large-buffer
behaviour).  Packet loss is **ignored** except for RTOs — the source of
BBRv1's retransmission storms under RED and its CUBIC starvation.

State machine: STARTUP (gain 2/ln 2) -> DRAIN -> PROBE_BW (8-phase pacing
gain cycle [1.25, 0.75, 1 x 6]) with periodic PROBE_RTT excursions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cca.base import AckEvent, CongestionControl
from repro.cca.bbr_common import WindowedMax, WindowedMin
from repro.units import milliseconds, seconds

BBR_HIGH_GAIN = 2.885  # 2/ln(2)
BBR_DRAIN_GAIN = 1.0 / BBR_HIGH_GAIN
BBR_CWND_GAIN = 2.0
BBR_PACING_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BTLBW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW_NS = seconds(10)
PROBE_RTT_DURATION_NS = milliseconds(200)
PROBE_RTT_CWND = 4.0
MIN_CWND = 4.0
FULL_BW_THRESH = 1.25
FULL_BW_COUNT = 3

STARTUP, DRAIN, PROBE_BW, PROBE_RTT = "STARTUP", "DRAIN", "PROBE_BW", "PROBE_RTT"


class BbrV1(CongestionControl):
    """BBRv1: model-based pacing with a 2xBDP inflight cap."""
    name = "bbr"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.state = STARTUP
        self.btlbw_filter = WindowedMax(BTLBW_WINDOW_ROUNDS)
        self.min_rtt_filter = WindowedMin(MIN_RTT_WINDOW_NS)
        self.min_rtt_stamp_ns = 0
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.full_pipe = False
        self.cycle_index = 0
        self.cycle_stamp_ns = 0
        self.pacing_gain = BBR_HIGH_GAIN
        self.cwnd_gain = BBR_HIGH_GAIN
        self.probe_rtt_done_stamp_ns: Optional[int] = None
        self._prior_state = PROBE_BW
        self._rng = rng
        self.cwnd = float(max(MIN_CWND, self.cwnd))

    # -- model --------------------------------------------------------------------

    @property
    def btlbw_pps(self) -> Optional[float]:
        return self.btlbw_filter.get()

    @property
    def min_rtt_ns(self) -> Optional[int]:
        return self.min_rtt_filter.get()

    def bdp_segments(self, gain: float = 1.0) -> Optional[float]:
        """Estimated bandwidth-delay product in segments, times ``gain``."""
        bw = self.btlbw_pps
        rtt = self.min_rtt_ns
        if bw is None or rtt is None:
            return None
        return gain * bw * rtt / 1e9

    # -- main callback --------------------------------------------------------------

    def on_ack(self, ev: AckEvent) -> None:
        self._update_model(ev)
        self._update_state(ev)
        self._set_pacing_and_cwnd(ev)

    def _update_model(self, ev: AckEvent) -> None:
        sample = ev.delivery_rate_pps
        if sample is not None:
            current = self.btlbw_pps
            # App-limited samples only count if they raise the estimate.
            if not ev.is_app_limited or current is None or sample > current:
                self.btlbw_filter.update(sample, ev.round_count)
        if ev.rtt_ns is not None:
            prior = self.min_rtt_filter.get(ev.now_ns)
            self.min_rtt_filter.update(ev.rtt_ns, ev.now_ns)
            # Refresh the stamp only on a strictly lower sample: a standing
            # queue (rtt > true min) must eventually trigger PROBE_RTT.
            if prior is None or ev.rtt_ns < prior:
                self.min_rtt_stamp_ns = ev.now_ns

    def _check_full_pipe(self, ev: AckEvent) -> None:
        if self.full_pipe or not ev.round_start or ev.is_app_limited:
            return
        bw = self.btlbw_pps or 0.0
        if bw >= self.full_bw * FULL_BW_THRESH:
            self.full_bw = bw
            self.full_bw_count = 0
            return
        self.full_bw_count += 1
        if self.full_bw_count >= FULL_BW_COUNT:
            self.full_pipe = True

    def _update_state(self, ev: AckEvent) -> None:
        now = ev.now_ns
        if self.state == STARTUP:
            self._check_full_pipe(ev)
            if self.full_pipe:
                self.state = DRAIN
        if self.state == DRAIN:
            bdp = self.bdp_segments()
            if bdp is not None and ev.inflight <= bdp:
                self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            self._advance_cycle(ev)
        self._maybe_probe_rtt(ev)

    def _enter_probe_bw(self, now_ns: int) -> None:
        self.state = PROBE_BW
        # Start in a random non-probing phase to desynchronize flows.
        if self._rng is not None:
            self.cycle_index = int(self._rng.integers(2, len(BBR_PACING_CYCLE)))
        else:
            self.cycle_index = 2
        self.cycle_stamp_ns = now_ns

    def _advance_cycle(self, ev: AckEvent) -> None:
        rtt = self.min_rtt_ns or milliseconds(10)
        elapsed = ev.now_ns - self.cycle_stamp_ns
        gain = BBR_PACING_CYCLE[self.cycle_index]
        advance = False
        if gain == 1.25:
            # Probe until we've had a full min_rtt at elevated inflight.
            advance = elapsed > rtt
        elif gain == 0.75:
            bdp = self.bdp_segments()
            advance = elapsed > rtt or (bdp is not None and ev.inflight <= bdp)
        else:
            advance = elapsed > rtt
        if advance:
            self.cycle_index = (self.cycle_index + 1) % len(BBR_PACING_CYCLE)
            self.cycle_stamp_ns = ev.now_ns

    def _maybe_probe_rtt(self, ev: AckEvent) -> None:
        now = ev.now_ns
        if self.state != PROBE_RTT:
            expired = (
                self.min_rtt_stamp_ns > 0
                and now - self.min_rtt_stamp_ns > MIN_RTT_WINDOW_NS
            )
            if expired:
                self._prior_state = PROBE_BW if self.full_pipe else STARTUP
                self.state = PROBE_RTT
                self.probe_rtt_done_stamp_ns = None
            else:
                return
        # In PROBE_RTT: wait for inflight to fall to the floor, hold 200ms.
        if self.probe_rtt_done_stamp_ns is None:
            if ev.inflight <= PROBE_RTT_CWND:
                rtt = self.min_rtt_ns or milliseconds(10)
                self.probe_rtt_done_stamp_ns = now + max(PROBE_RTT_DURATION_NS, rtt)
        elif now >= self.probe_rtt_done_stamp_ns:
            self.min_rtt_stamp_ns = now
            if self._prior_state == PROBE_BW:
                self._enter_probe_bw(now)
            else:
                self.state = STARTUP

    def _set_pacing_and_cwnd(self, ev: AckEvent) -> None:
        if self.state == STARTUP:
            self.pacing_gain = BBR_HIGH_GAIN
            self.cwnd_gain = BBR_HIGH_GAIN
        elif self.state == DRAIN:
            self.pacing_gain = BBR_DRAIN_GAIN
            self.cwnd_gain = BBR_HIGH_GAIN
        elif self.state == PROBE_BW:
            self.pacing_gain = BBR_PACING_CYCLE[self.cycle_index]
            self.cwnd_gain = BBR_CWND_GAIN
        else:  # PROBE_RTT
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0

        bw = self.btlbw_pps
        if bw is not None:
            self.pacing_rate_pps = max(1.0, self.pacing_gain * bw)

        if self.state == PROBE_RTT:
            self.cwnd = PROBE_RTT_CWND
            return
        target = self.bdp_segments(self.cwnd_gain)
        if target is None:
            # No model yet: exponential growth toward whatever is out there.
            self.cwnd += ev.delivered_this_ack
            return
        target = max(target, MIN_CWND)
        if self.cwnd < target:
            # Fill toward the target at slow-start speed.
            self.cwnd = min(self.cwnd + ev.delivered_this_ack, target)
        else:
            self.cwnd = target

    # -- loss response (there barely is one) ------------------------------------------

    def on_congestion_event(self, now_ns: int) -> None:
        # BBRv1 does not reduce its rate on packet loss.
        pass

    def on_ecn(self, now_ns: int) -> None:
        # BBRv1 ignores ECN signals entirely.
        pass

    def on_rto(self, now_ns: int, first_timeout: bool = True) -> None:
        # Rigid response: collapse the window; the model refills it as ACKs
        # return.  This is the throughput sawtooth the paper observes under
        # RED ("RTOs force BBRv1 to significantly reduce its sending rate").
        self.cwnd = MIN_CWND
        self.full_bw = 0.0
        self.full_bw_count = 0
