"""Shared BBR machinery: windowed max/min filters.

BBR's bottleneck-bandwidth estimate is a windowed maximum of delivery-rate
samples (window measured in packet-timed rounds); its propagation-delay
estimate is a windowed minimum of RTT samples (window measured in wall
time).  Both are implemented as monotonic deques: O(1) amortized update,
exact sliding-window extreme.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class WindowedMax:
    """Sliding-window maximum keyed by an integer tick (e.g. round count)."""

    __slots__ = ("window", "_samples")

    def __init__(self, window: int):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._samples: Deque[Tuple[int, float]] = deque()

    def update(self, value: float, tick: int) -> None:
        """Insert a sample taken at integer tick ``tick``."""
        samples = self._samples
        # Expire out-of-window entries from the front.
        while samples and samples[0][0] <= tick - self.window:
            samples.popleft()
        # Monotonic: strip entries dominated by the new value.
        while samples and samples[-1][1] <= value:
            samples.pop()
        samples.append((tick, value))

    def get(self, tick: Optional[int] = None) -> Optional[float]:
        """Window max (expiring entries older than ``tick`` first)."""
        samples = self._samples
        if tick is not None:
            while samples and samples[0][0] <= tick - self.window:
                samples.popleft()
        return samples[0][1] if samples else None

    def reset(self) -> None:
        """Forget all samples."""
        self._samples.clear()


class WindowedMin:
    """Sliding-window minimum keyed by time (ns)."""

    __slots__ = ("window_ns", "_samples")

    def __init__(self, window_ns: int):
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        self.window_ns = window_ns
        self._samples: Deque[Tuple[int, int]] = deque()

    def update(self, value: int, now_ns: int) -> None:
        """Insert a sample taken at time ``now_ns``."""
        samples = self._samples
        while samples and samples[0][0] <= now_ns - self.window_ns:
            samples.popleft()
        while samples and samples[-1][1] >= value:
            samples.pop()
        samples.append((now_ns, value))

    def get(self, now_ns: Optional[int] = None) -> Optional[int]:
        """Window min (the last sample never expires entirely)."""
        samples = self._samples
        if now_ns is not None:
            while len(samples) > 1 and samples[0][0] <= now_ns - self.window_ns:
                samples.popleft()
        return samples[0][1] if samples else None

    def reset(self) -> None:
        """Forget all samples."""
        self._samples.clear()
