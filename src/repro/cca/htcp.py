"""Hamilton TCP (Leith & Shorten 2004).

The additive-increase coefficient grows with the *time elapsed since the
last congestion event*: alpha(dt) = 1 for dt <= 1 s, then
``1 + 10(dt-1) + ((dt-1)/2)^2`` — aggressive on long-uncongested high-BDP
paths, Reno-like right after a loss.  The multiplicative-decrease factor
adapts to queuing delay: beta = RTTmin/RTTmax (clamped to [0.5, 0.8]),
which is why HTCP backs off harder under bufferbloat — the behaviour
behind its gradual throughput loss to CUBIC under FIFO with big buffers
(paper §5.1, "HTCP's takeover").
"""

from __future__ import annotations

from typing import Optional

from repro.cca.base import MIN_CWND_SEGMENTS, AckEvent, CongestionControl

HTCP_DELTA_L_S = 1.0  # low-speed regime threshold (seconds)
HTCP_BETA_MIN = 0.5
HTCP_BETA_MAX = 0.8
#: Linux tcp_htcp.c ships with use_bandwidth_switch = 1: when the measured
#: throughput between consecutive loss events changes by more than 20 %,
#: H-TCP falls back to the deep beta = 0.5 cut.  This is the "interprets
#: increased queuing delays as limited bandwidth" behaviour the paper
#: credits for HTCP gradually ceding a FIFO buffer to CUBIC (§5.1).
USE_BANDWIDTH_SWITCH = True


class HTcp(CongestionControl):
    """H-TCP: elapsed-time alpha, adaptive beta, bandwidth switch."""
    name = "htcp"

    def __init__(self) -> None:
        super().__init__()
        self._last_congestion_ns: Optional[int] = None
        # RTT extremes observed since the last congestion event.
        self._rtt_min_ns: Optional[int] = None
        self._rtt_max_ns: Optional[int] = None
        self.beta = HTCP_BETA_MIN
        # Bandwidth-switch state: peak measured throughput this epoch and
        # the previous epoch's peak.
        self._max_bw_pps = 0.0
        self._old_max_bw_pps = 0.0
        self._modeswitch = False

    def _alpha(self, now_ns: int) -> float:
        if self._last_congestion_ns is None:
            return 1.0
        dt = (now_ns - self._last_congestion_ns) / 1e9
        if dt <= HTCP_DELTA_L_S:
            return 1.0
        x = dt - HTCP_DELTA_L_S
        alpha = 1.0 + 10.0 * x + (x / 2.0) ** 2
        # H-TCP scales alpha by 2*(1-beta) so throughput is continuous
        # across the backoff (Leith & Shorten's alpha-beta coupling).
        return 2.0 * (1.0 - self.beta) * alpha

    def on_ack(self, ev: AckEvent) -> None:
        """Track RTT/bandwidth extremes; grow by alpha(elapsed)/cwnd."""
        if ev.rtt_ns is not None:
            if self._rtt_min_ns is None or ev.rtt_ns < self._rtt_min_ns:
                self._rtt_min_ns = ev.rtt_ns
            if self._rtt_max_ns is None or ev.rtt_ns > self._rtt_max_ns:
                self._rtt_max_ns = ev.rtt_ns
        if ev.delivery_rate_pps is not None and ev.delivery_rate_pps > self._max_bw_pps:
            self._max_bw_pps = ev.delivery_rate_pps
        if ev.in_recovery:
            return
        acked = ev.delivered_this_ack
        if acked <= 0:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += acked * self._alpha(ev.now_ns) / self.cwnd

    def _update_beta(self) -> None:
        """Linux htcp_beta_update: bandwidth switch, then the RTT ratio."""
        if USE_BANDWIDTH_SWITCH:
            max_bw, old_max_bw = self._max_bw_pps, self._old_max_bw_pps
            self._old_max_bw_pps = max_bw
            self._max_bw_pps = 0.0
            # Throughput moved > 20% since the previous loss epoch:
            # the share estimate is unreliable — take the deep cut.
            if not (4 * old_max_bw <= 5 * max_bw <= 6 * old_max_bw):
                self.beta = HTCP_BETA_MIN
                self._modeswitch = False
                return
        if self._modeswitch and self._rtt_min_ns and self._rtt_max_ns:
            ratio = self._rtt_min_ns / self._rtt_max_ns
            self.beta = min(HTCP_BETA_MAX, max(HTCP_BETA_MIN, ratio))
        else:
            self.beta = HTCP_BETA_MIN
            self._modeswitch = True

    def on_congestion_event(self, now_ns: int) -> None:
        """Cut by the adaptive beta and restart the epoch clocks."""
        self._update_beta()
        self.ssthresh = max(self.cwnd * self.beta, MIN_CWND_SEGMENTS)
        self.cwnd = self.ssthresh
        self._last_congestion_ns = now_ns
        self._rtt_min_ns = None
        self._rtt_max_ns = None

    def on_rto(self, now_ns: int, first_timeout: bool = True) -> None:
        """Timeout: deep cut and full epoch reset."""
        self._last_congestion_ns = now_ns
        self._rtt_min_ns = None
        self._rtt_max_ns = None
        self.beta = HTCP_BETA_MIN
        super().on_rto(now_ns, first_timeout)
