"""CCA factory keyed by the paper's algorithm names."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.cca.base import CongestionControl
from repro.cca.bbrv1 import BbrV1
from repro.cca.bbrv2 import BbrV2
from repro.cca.cubic import Cubic
from repro.cca.htcp import HTcp
from repro.cca.reno import Reno

# Canonical names plus the aliases used in the paper's tables.
_FACTORIES: Dict[str, Callable[[Optional[np.random.Generator]], CongestionControl]] = {
    "reno": lambda rng: Reno(),
    "cubic": lambda rng: Cubic(),
    "htcp": lambda rng: HTcp(),
    "bbr": lambda rng: BbrV1(rng),
    "bbrv1": lambda rng: BbrV1(rng),
    "bbr1": lambda rng: BbrV1(rng),
    "bbr2": lambda rng: BbrV2(rng),
    "bbrv2": lambda rng: BbrV2(rng),
}

CCA_NAMES = ("reno", "cubic", "htcp", "bbrv1", "bbrv2")


def canonical_cca_name(name: str) -> str:
    """Map aliases to the canonical name used in results/reports."""
    key = name.lower()
    if key in ("bbr", "bbr1", "bbrv1"):
        return "bbrv1"
    if key in ("bbr2", "bbrv2"):
        return "bbrv2"
    if key in _FACTORIES:
        return key
    raise ValueError(f"unknown CCA {name!r}; expected one of {sorted(_FACTORIES)}")


def make_cca(name: str, rng: Optional[np.random.Generator] = None) -> CongestionControl:
    """Instantiate the congestion controller called ``name``."""
    key = name.lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        raise ValueError(f"unknown CCA {name!r}; expected one of {sorted(_FACTORIES)}")
    return factory(rng)
