"""Congestion-control algorithms under study.

Reno, CUBIC, HTCP, BBRv1, and BBRv2 behind one plugin interface
(:class:`repro.cca.base.CongestionControl`).  Use
:func:`repro.cca.registry.make_cca` to build one by its paper name.
"""

from repro.cca.base import AckEvent, CongestionControl
from repro.cca.bbrv1 import BbrV1
from repro.cca.bbrv2 import BbrV2
from repro.cca.cubic import Cubic
from repro.cca.htcp import HTcp
from repro.cca.registry import CCA_NAMES, make_cca
from repro.cca.reno import Reno

__all__ = [
    "CongestionControl",
    "AckEvent",
    "Reno",
    "Cubic",
    "HTcp",
    "BbrV1",
    "BbrV2",
    "make_cca",
    "CCA_NAMES",
]
