"""The congestion-control plugin interface.

A :class:`CongestionControl` owns two outputs the sender reads after every
callback:

- :attr:`cwnd` — congestion window in segments (float; the sender floors it
  when gating transmissions), and
- :attr:`pacing_rate_pps` — segments/second pacing rate, or ``None`` for
  ACK-clocked (non-paced) algorithms.

The sender drives it with:

- :meth:`on_ack` for every ACK, carrying an :class:`AckEvent`;
- :meth:`on_congestion_event` once per loss-recovery episode (fast
  retransmit entry) — the multiplicative-decrease point for loss-based
  algorithms;
- :meth:`on_ecn` when an ACK echoes a CE mark (at most the sender's rate;
  algorithms de-duplicate per RTT themselves);
- :meth:`on_rto` on retransmission timeout.
"""

from __future__ import annotations

from typing import Optional

INITIAL_CWND_SEGMENTS = 10.0
MIN_CWND_SEGMENTS = 2.0


class AckEvent:
    """Everything the sender knows at the moment an ACK is processed."""

    __slots__ = (
        "now_ns",
        "newly_acked",
        "newly_sacked",
        "newly_lost",
        "rtt_ns",
        "min_rtt_ns",
        "srtt_ns",
        "delivery_rate_pps",
        "is_app_limited",
        "inflight",
        "round_start",
        "round_count",
        "in_recovery",
        "total_delivered",
    )

    def __init__(
        self,
        now_ns: int,
        newly_acked: int,
        newly_sacked: int,
        newly_lost: int,
        rtt_ns: Optional[int],
        min_rtt_ns: Optional[int],
        srtt_ns: Optional[int],
        delivery_rate_pps: Optional[float],
        is_app_limited: bool,
        inflight: int,
        round_start: bool,
        round_count: int,
        in_recovery: bool,
        total_delivered: int,
    ):
        self.now_ns = now_ns
        self.newly_acked = newly_acked
        self.newly_sacked = newly_sacked
        self.newly_lost = newly_lost
        self.rtt_ns = rtt_ns
        self.min_rtt_ns = min_rtt_ns
        self.srtt_ns = srtt_ns
        self.delivery_rate_pps = delivery_rate_pps
        self.is_app_limited = is_app_limited
        self.inflight = inflight
        self.round_start = round_start
        self.round_count = round_count
        self.in_recovery = in_recovery
        self.total_delivered = total_delivered

    @property
    def delivered_this_ack(self) -> int:
        """Segments newly delivered by this ACK (cumulative + SACKed)."""
        return self.newly_acked + self.newly_sacked


class CongestionControl:
    """Base class.  Subclasses override the callbacks they care about."""

    #: Registry name, set by subclasses (e.g. "cubic").
    name = "base"

    def __init__(self) -> None:
        self.cwnd: float = INITIAL_CWND_SEGMENTS
        self.ssthresh: float = float("inf")
        self.pacing_rate_pps: Optional[float] = None

    # -- callbacks ---------------------------------------------------------------

    def on_ack(self, ev: AckEvent) -> None:
        """Per-ACK update (window growth, model updates)."""

    def on_congestion_event(self, now_ns: int) -> None:
        """Entering fast recovery (loss detected via dup-SACK threshold)."""

    def on_ecn(self, now_ns: int) -> None:
        """An ACK echoed an ECN CE mark.  Default: treat as congestion."""
        self.on_congestion_event(now_ns)

    def on_rto(self, now_ns: int, first_timeout: bool = True) -> None:
        """Retransmission timeout: collapse to loss-recovery slow start.

        ``first_timeout`` is False for back-to-back timeouts within one loss
        episode — like Linux, ssthresh is only reduced on the first one.
        """
        if first_timeout:
            self.ssthresh = max(self.cwnd / 2.0, MIN_CWND_SEGMENTS)
        self.cwnd = 1.0

    def on_sent(self, now_ns: int, inflight: int) -> None:
        """A segment was handed to the NIC (rarely needed)."""

    # -- helpers -----------------------------------------------------------------

    def _clamp_cwnd(self, floor: float = MIN_CWND_SEGMENTS) -> None:
        if self.cwnd < floor:
            self.cwnd = floor

    def __repr__(self) -> str:  # pragma: no cover
        pacing = f" pacing={self.pacing_rate_pps:.0f}pps" if self.pacing_rate_pps else ""
        return f"<{type(self).__name__} cwnd={self.cwnd:.1f}{pacing}>"
