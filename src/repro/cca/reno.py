"""TCP Reno (RFC 5681): slow start, AIMD congestion avoidance.

On loss the window halves (beta = 0.5) — the paper's explanation for Reno
"gradually losing its fair share" to CUBIC as buffers grow is precisely
this fixed halving versus CUBIC's adaptive decrease and cubic regrowth.
"""

from __future__ import annotations

from repro.cca.base import MIN_CWND_SEGMENTS, AckEvent, CongestionControl

RENO_BETA = 0.5


class Reno(CongestionControl):
    """Classic AIMD: slow start + 0.5 multiplicative decrease."""
    name = "reno"

    def __init__(self) -> None:
        super().__init__()
        self._last_cut_ns = -1

    def on_ack(self, ev: AckEvent) -> None:
        """Slow start (+1/ACK) or congestion avoidance (+1/RTT)."""
        if ev.in_recovery:
            return  # no growth while repairing losses
        acked = ev.delivered_this_ack
        if acked <= 0:
            return
        if self.cwnd < self.ssthresh:
            # Slow start: one segment per segment acked.
            self.cwnd += acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            # Congestion avoidance: ~one segment per RTT.
            self.cwnd += acked / self.cwnd

    def on_congestion_event(self, now_ns: int) -> None:
        """Halve the window (the classic multiplicative decrease)."""
        self._last_cut_ns = now_ns
        self.ssthresh = max(self.cwnd * RENO_BETA, MIN_CWND_SEGMENTS)
        self.cwnd = self.ssthresh
