"""BBR version 2 (Cardwell et al., IETF 106; Linux v2alpha branch).

Keeps BBRv1's model-based core (bandwidth max filter, min-RTT filter,
pacing) and adds the loss/ECN-bounded inflight model the paper's analysis
revolves around:

- ``inflight_hi`` — upper bound on inflight data, *reduced when the
  per-round loss rate exceeds the 2 % threshold* ("BBRv2 reacts by
  reducing its inflight_hi", §5.1) and grown again during PROBE_UP;
- ``inflight_lo`` — short-term bound after a loss round, decayed once the
  episode passes;
- a restructured PROBE_BW cycle DOWN -> CRUISE -> REFILL -> UP with
  headroom left for competing flows during CRUISE;
- STARTUP also exits on excessive loss, not just on bandwidth plateau;
- an optional ECN response (CE-fraction driven), used by the ECN ablation.

This is a faithful simplification of the v2alpha code: the mechanisms the
paper's observations hinge on are implemented; minor engineering details
(e.g. the exact round-count randomization of CRUISE duration) follow the
published constants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cca.base import AckEvent, CongestionControl
from repro.cca.bbr_common import WindowedMax, WindowedMin
from repro.units import milliseconds, seconds

V2_STARTUP_PACING_GAIN = 2.77
V2_STARTUP_CWND_GAIN = 2.0
V2_CWND_GAIN = 2.0
V2_DOWN_GAIN = 0.9
V2_UP_GAIN = 1.25
LOSS_THRESH = 0.02  # the 2 % per-round loss threshold
BETA = 0.7  # inflight_lo multiplicative decrease
HEADROOM = 0.15  # fraction of inflight_hi left free while cruising
ECN_ALPHA_GAIN = 0.0625
ECN_THRESH = 0.5
ECN_FACTOR = 0.3
BTLBW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW_NS = seconds(10)
PROBE_RTT_INTERVAL_NS = seconds(5)
PROBE_RTT_DURATION_NS = milliseconds(200)
MIN_CWND = 4.0
FULL_BW_THRESH = 1.25
FULL_BW_COUNT = 3
STARTUP_LOSS_EXIT_ROUNDS = 2
CRUISE_MIN_S, CRUISE_MAX_S = 2.0, 3.0

STARTUP, DRAIN = "STARTUP", "DRAIN"
PROBE_DOWN, PROBE_CRUISE, PROBE_REFILL, PROBE_UP = (
    "PROBE_DOWN",
    "PROBE_CRUISE",
    "PROBE_REFILL",
    "PROBE_UP",
)
PROBE_RTT = "PROBE_RTT"


class BbrV2(CongestionControl):
    """BBRv2: BBRv1 plus loss/ECN-bounded inflight (inflight_hi/lo)."""
    name = "bbr2"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.state = STARTUP
        self.btlbw_filter = WindowedMax(BTLBW_WINDOW_ROUNDS)
        self.min_rtt_filter = WindowedMin(MIN_RTT_WINDOW_NS)
        self.min_rtt_stamp_ns = 0
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.full_pipe = False
        self.pacing_gain = V2_STARTUP_PACING_GAIN
        self.cwnd_gain = V2_STARTUP_CWND_GAIN
        self.inflight_hi = float("inf")
        self.inflight_lo = float("inf")
        # Per-round loss accounting.
        self._round_delivered = 0
        self._round_lost = 0
        self._loss_rounds = 0  # consecutive high-loss rounds (STARTUP exit)
        self._loss_round_seen = False
        # Phase timing.
        self._phase_stamp_ns = 0
        self._cruise_duration_ns = seconds(CRUISE_MIN_S)
        self._refill_round_start: Optional[int] = None
        self.probe_rtt_done_stamp_ns: Optional[int] = None
        self._prior_state = PROBE_CRUISE
        # ECN state.
        self.ecn_alpha = 0.0
        self._round_ecn = 0
        self._rng = rng
        self.cwnd = float(max(MIN_CWND, self.cwnd))

    # -- model --------------------------------------------------------------------

    @property
    def btlbw_pps(self) -> Optional[float]:
        return self.btlbw_filter.get()

    @property
    def min_rtt_ns(self) -> Optional[int]:
        return self.min_rtt_filter.get()

    def bdp_segments(self, gain: float = 1.0) -> Optional[float]:
        """Estimated bandwidth-delay product in segments, times ``gain``."""
        bw = self.btlbw_pps
        rtt = self.min_rtt_ns
        if bw is None or rtt is None:
            return None
        return gain * bw * rtt / 1e9

    # -- main callback --------------------------------------------------------------

    def on_ack(self, ev: AckEvent) -> None:
        self._update_model(ev)
        self._update_loss_round(ev)
        self._update_state(ev)
        self._set_pacing_and_cwnd(ev)

    def _update_model(self, ev: AckEvent) -> None:
        sample = ev.delivery_rate_pps
        if sample is not None:
            current = self.btlbw_pps
            if not ev.is_app_limited or current is None or sample > current:
                self.btlbw_filter.update(sample, ev.round_count)
        if ev.rtt_ns is not None:
            prior = self.min_rtt_filter.get(ev.now_ns)
            self.min_rtt_filter.update(ev.rtt_ns, ev.now_ns)
            # Strictly-lower refresh, as in BbrV1: see the note there.
            if prior is None or ev.rtt_ns < prior:
                self.min_rtt_stamp_ns = ev.now_ns

    # -- per-round loss bookkeeping -----------------------------------------------------

    def _update_loss_round(self, ev: AckEvent) -> None:
        self._round_delivered += ev.delivered_this_ack
        self._round_lost += ev.newly_lost
        self._round_ecn += 0  # CE echoes arrive via on_ecn
        if not ev.round_start:
            return
        delivered = max(1, self._round_delivered)
        loss_rate = self._round_lost / (delivered + self._round_lost)
        self._loss_round_seen = loss_rate >= LOSS_THRESH and self._round_lost >= 2
        if self._loss_round_seen:
            self._loss_rounds += 1
            self._on_high_loss_round(ev)
        else:
            self._loss_rounds = 0
            # Decay short-term bound once losses subside.
            if self.inflight_lo != float("inf"):
                bdp = self.bdp_segments() or self.inflight_lo
                self.inflight_lo = min(self.inflight_lo * 1.15, max(self.inflight_lo, bdp))
                if self.inflight_lo >= (self.bdp_segments(V2_CWND_GAIN) or float("inf")):
                    self.inflight_lo = float("inf")
        self._round_delivered = 0
        self._round_lost = 0

    def _on_high_loss_round(self, ev: AckEvent) -> None:
        """The per-round loss rate crossed the 2 % threshold: bound inflight."""
        inflight_now = float(max(ev.inflight, MIN_CWND))
        if self.inflight_hi == float("inf"):
            self.inflight_hi = inflight_now
        else:
            self.inflight_hi = max(MIN_CWND, min(self.inflight_hi, inflight_now) * BETA)
        if self.inflight_lo == float("inf"):
            self.inflight_lo = max(MIN_CWND, self.cwnd * BETA)
        else:
            self.inflight_lo = max(MIN_CWND, self.inflight_lo * BETA)
        if self.state == PROBE_UP:
            self._enter_phase(PROBE_DOWN, ev.now_ns)

    # -- state machine --------------------------------------------------------------

    def _check_full_pipe(self, ev: AckEvent) -> None:
        if self.full_pipe or not ev.round_start or ev.is_app_limited:
            return
        bw = self.btlbw_pps or 0.0
        if bw >= self.full_bw * FULL_BW_THRESH:
            self.full_bw = bw
            self.full_bw_count = 0
        else:
            self.full_bw_count += 1
        if self.full_bw_count >= FULL_BW_COUNT:
            self.full_pipe = True
        # v2: a couple of consecutive high-loss rounds also end STARTUP.
        if self._loss_rounds >= STARTUP_LOSS_EXIT_ROUNDS:
            self.full_pipe = True

    def _enter_phase(self, phase: str, now_ns: int) -> None:
        self.state = phase
        self._phase_stamp_ns = now_ns
        if phase == PROBE_CRUISE:
            if self._rng is not None:
                span = self._rng.uniform(CRUISE_MIN_S, CRUISE_MAX_S)
            else:
                span = CRUISE_MIN_S
            self._cruise_duration_ns = seconds(span)
        elif phase == PROBE_REFILL:
            self._refill_round_start = None
            # v2alpha resets the short-term lower bound before probing.
            self.inflight_lo = float("inf")

    def _update_state(self, ev: AckEvent) -> None:
        now = ev.now_ns
        if self.state == STARTUP:
            self._check_full_pipe(ev)
            if self.full_pipe:
                self.state = DRAIN
        if self.state == DRAIN:
            bdp = self.bdp_segments()
            if bdp is not None and ev.inflight <= bdp:
                self._enter_phase(PROBE_DOWN, now)
        elif self.state == PROBE_DOWN:
            # Time to cruise once inflight is within the headroom bound of
            # inflight_hi *and* back down to 1.0 x estimated BDP.
            bdp = self.bdp_segments() or MIN_CWND
            headroom_bound = (
                self.inflight_hi * (1.0 - HEADROOM)
                if self.inflight_hi != float("inf")
                else float("inf")
            )
            if ev.inflight <= max(MIN_CWND, min(bdp, headroom_bound)):
                self._enter_phase(PROBE_CRUISE, now)
        elif self.state == PROBE_CRUISE:
            if now - self._phase_stamp_ns >= self._cruise_duration_ns:
                self._enter_phase(PROBE_REFILL, now)
        elif self.state == PROBE_REFILL:
            if self._refill_round_start is None:
                self._refill_round_start = ev.round_count
            elif ev.round_count > self._refill_round_start:
                self._enter_phase(PROBE_UP, now)
        elif self.state == PROBE_UP:
            # Grow inflight_hi at slow-start pace while the pipe tolerates
            # it (v2alpha's bbr2_probe_inflight_hi_upward).
            if self.inflight_hi != float("inf") and not self._loss_round_seen:
                self.inflight_hi += ev.delivered_this_ack
            bdp = self.bdp_segments(V2_UP_GAIN)
            rtt = self.min_rtt_ns or milliseconds(10)
            if bdp is not None and (
                ev.inflight >= min(bdp, self.inflight_hi) or now - self._phase_stamp_ns > 4 * rtt
            ):
                self._enter_phase(PROBE_DOWN, now)
        self._maybe_probe_rtt(ev)

    def _maybe_probe_rtt(self, ev: AckEvent) -> None:
        now = ev.now_ns
        if self.state in (STARTUP, DRAIN):
            return
        if self.state != PROBE_RTT:
            expired = (
                self.min_rtt_stamp_ns > 0
                and now - self.min_rtt_stamp_ns > PROBE_RTT_INTERVAL_NS
            )
            if expired:
                self._prior_state = self.state if self.state.startswith("PROBE_") else PROBE_CRUISE
                self.state = PROBE_RTT
                self.probe_rtt_done_stamp_ns = None
            else:
                return
        floor = max(MIN_CWND, 0.5 * (self.bdp_segments() or MIN_CWND))
        if self.probe_rtt_done_stamp_ns is None:
            if ev.inflight <= floor:
                self.probe_rtt_done_stamp_ns = now + PROBE_RTT_DURATION_NS
        elif now >= self.probe_rtt_done_stamp_ns:
            self.min_rtt_stamp_ns = now
            self._enter_phase(PROBE_CRUISE, now)

    # -- outputs ------------------------------------------------------------------

    def _inflight_bound(self) -> float:
        bound = min(self.inflight_hi, self.inflight_lo)
        if self.state == PROBE_CRUISE and bound != float("inf"):
            bound *= 1.0 - HEADROOM
        elif self.state in (PROBE_REFILL, PROBE_UP):
            # Probing phases may use the full (or growing) bound.
            bound = self.inflight_hi
        return bound

    def _set_pacing_and_cwnd(self, ev: AckEvent) -> None:
        if self.state == STARTUP:
            self.pacing_gain, self.cwnd_gain = V2_STARTUP_PACING_GAIN, V2_STARTUP_CWND_GAIN
        elif self.state == DRAIN:
            self.pacing_gain, self.cwnd_gain = 1.0 / V2_STARTUP_PACING_GAIN, V2_STARTUP_CWND_GAIN
        elif self.state == PROBE_DOWN:
            self.pacing_gain, self.cwnd_gain = V2_DOWN_GAIN, V2_CWND_GAIN
        elif self.state in (PROBE_CRUISE, PROBE_REFILL):
            self.pacing_gain, self.cwnd_gain = 1.0, V2_CWND_GAIN
        elif self.state == PROBE_UP:
            self.pacing_gain, self.cwnd_gain = V2_UP_GAIN, V2_CWND_GAIN
        else:  # PROBE_RTT
            self.pacing_gain, self.cwnd_gain = 1.0, 1.0

        bw = self.btlbw_pps
        if bw is not None:
            self.pacing_rate_pps = max(1.0, self.pacing_gain * bw)

        if self.state == PROBE_RTT:
            self.cwnd = max(MIN_CWND, 0.5 * (self.bdp_segments() or MIN_CWND))
            return
        target = self.bdp_segments(self.cwnd_gain)
        if target is None:
            self.cwnd += ev.delivered_this_ack
            return
        target = min(max(target, MIN_CWND), self._inflight_bound())
        target = max(target, MIN_CWND)
        if self.cwnd < target:
            self.cwnd = min(self.cwnd + ev.delivered_this_ack, target)
        else:
            self.cwnd = target

    # -- loss / ECN / RTO ---------------------------------------------------------------

    def on_congestion_event(self, now_ns: int) -> None:
        # Fast-recovery entry carries no immediate rate cut in v2; the
        # per-round loss accounting decides whether to bound inflight.
        pass

    def on_ecn(self, now_ns: int) -> None:
        # CE-fraction EWMA; a heavily-marked path lowers inflight_hi.
        self.ecn_alpha = min(1.0, self.ecn_alpha + ECN_ALPHA_GAIN * (1.0 - self.ecn_alpha))
        if self.ecn_alpha >= ECN_THRESH:
            base = self.inflight_hi if self.inflight_hi != float("inf") else self.cwnd
            self.inflight_hi = max(MIN_CWND, base * (1.0 - ECN_FACTOR * self.ecn_alpha))
            self.ecn_alpha = 0.0

    def on_rto(self, now_ns: int, first_timeout: bool = True) -> None:
        self.cwnd = MIN_CWND
        self.full_bw = 0.0
        self.full_bw_count = 0
        # The timeout restarts discovery; short-term bounds are stale.
        self.inflight_lo = float("inf")
