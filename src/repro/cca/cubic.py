"""TCP CUBIC (Ha, Rhee & Xu 2008; RFC 9438) — Linux's default CCA.

The window grows along ``W(t) = C*(t - K)^3 + W_max`` where ``t`` is the
time since the last congestion event and ``K = cbrt(W_max*beta/C)`` is the
time to regain ``W_max``.  Includes fast convergence and the TCP-friendly
(Reno-tracking) region.  Beta is 0.7 — the *adaptive multiplicative
decrease* the paper credits for CUBIC's buffer-filling advantage over Reno.
"""

from __future__ import annotations

from typing import Optional

from repro.cca.base import MIN_CWND_SEGMENTS, AckEvent, CongestionControl

CUBIC_C = 0.4  # scaling constant (segments/sec^3)
CUBIC_BETA = 0.7
FAST_CONVERGENCE = True

# HyStart++ (RFC 9406) delay-increase slow-start exit, as in Linux CUBIC.
HYSTART_MIN_SAMPLES = 8
HYSTART_ETA_MIN_NS = 4_000_000  # 4 ms
HYSTART_ETA_MAX_NS = 16_000_000  # 16 ms
HYSTART_LOW_WINDOW = 16.0  # no exit below this cwnd


class Cubic(CongestionControl):
    """CUBIC window dynamics with HyStart++ slow-start exit."""
    name = "cubic"

    def __init__(self) -> None:
        super().__init__()
        self.w_max = 0.0
        self._epoch_start_ns = -1
        self._k = 0.0  # seconds
        self._origin_point = 0.0
        self._w_est = 0.0  # TCP-friendly (Reno) estimate
        self._acks_in_epoch = 0
        # HyStart state: min RTT of the previous and current rounds.
        self._hs_last_round_min_ns: Optional[int] = None
        self._hs_round_min_ns: Optional[int] = None
        self._hs_samples = 0
        self.hystart_exits = 0

    # -- congestion avoidance ------------------------------------------------------

    def on_ack(self, ev: AckEvent) -> None:
        """Slow start (HyStart-guarded) or cubic-curve growth."""
        if ev.in_recovery:
            return
        acked = ev.delivered_this_ack
        if acked <= 0:
            return
        if self.cwnd < self.ssthresh:
            self._hystart_update(ev)
            self.cwnd += acked
            if self.cwnd > self.ssthresh:
                self.cwnd = self.ssthresh
            return
        rtt_s = (ev.srtt_ns or ev.rtt_ns or 0) / 1e9
        self._cubic_update(ev.now_ns, acked, rtt_s)

    def _hystart_update(self, ev: AckEvent) -> None:
        """Exit slow start on a per-round RTT increase (HyStart++)."""
        if ev.round_start:
            if self._hs_round_min_ns is not None and self._hs_samples >= HYSTART_MIN_SAMPLES:
                self._hs_last_round_min_ns = self._hs_round_min_ns
            self._hs_round_min_ns = None
            self._hs_samples = 0
        if ev.rtt_ns is None:
            return
        self._hs_samples += 1
        if self._hs_round_min_ns is None or ev.rtt_ns < self._hs_round_min_ns:
            self._hs_round_min_ns = ev.rtt_ns
        base = self._hs_last_round_min_ns
        if (
            base is not None
            and self.cwnd >= HYSTART_LOW_WINDOW
            and self._hs_samples >= HYSTART_MIN_SAMPLES
        ):
            eta = min(HYSTART_ETA_MAX_NS, max(HYSTART_ETA_MIN_NS, base // 8))
            if self._hs_round_min_ns >= base + eta:
                self.ssthresh = self.cwnd
                self.hystart_exits += 1

    def _cubic_update(self, now_ns: int, acked: int, rtt_s: float) -> None:
        if self._epoch_start_ns < 0:
            self._epoch_start_ns = now_ns
            if self.cwnd < self.w_max:
                self._k = ((self.w_max - self.cwnd) / CUBIC_C) ** (1.0 / 3.0)
                self._origin_point = self.w_max
            else:
                self._k = 0.0
                self._origin_point = self.cwnd
            self._w_est = self.cwnd
            self._acks_in_epoch = 0
        self._acks_in_epoch += acked

        # Cubic target one RTT ahead of now.
        t = (now_ns - self._epoch_start_ns) / 1e9 + rtt_s
        target = self._origin_point + CUBIC_C * (t - self._k) ** 3

        if target > self.cwnd:
            self.cwnd += acked * (target - self.cwnd) / self.cwnd
        else:
            # In the concave plateau / below origin: crawl.
            self.cwnd += acked * 0.01 / self.cwnd

        # TCP-friendly region (RFC 9438 eq. for the Reno estimate).
        self._w_est += acked * (3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)) / self.cwnd
        if self._w_est > self.cwnd:
            self.cwnd = self._w_est

    # -- congestion response ------------------------------------------------------

    def on_congestion_event(self, now_ns: int) -> None:
        """Multiplicative decrease (beta=0.7) with fast convergence."""
        self._epoch_start_ns = -1
        if FAST_CONVERGENCE and self.cwnd < self.w_max:
            # Release bandwidth faster when the loss came before full recovery.
            self.w_max = self.cwnd * (2.0 - CUBIC_BETA) / 2.0
        else:
            self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * CUBIC_BETA, MIN_CWND_SEGMENTS)
        self.cwnd = self.ssthresh

    def on_rto(self, now_ns: int, first_timeout: bool = True) -> None:
        """Collapse to loss-recovery slow start; remember w_max."""
        self._epoch_start_ns = -1
        if first_timeout:
            self.w_max = self.cwnd
        super().on_rto(now_ns, first_timeout)
