"""repro — reproduction of "Elephants Sharing the Highway" (SC-W 2023).

A from-scratch packet-level network simulator (discrete-event engine,
dumbbell testbed, Linux-style TCP with pluggable congestion control and
AQM disciplines) plus a fast fluid-model engine, an iperf3-style traffic
generator, and the full experiment/analysis pipeline regenerating every
table and figure of the paper.

Quickstart::

    from repro import run_experiment, ExperimentConfig

    result = run_experiment(ExperimentConfig(
        cca_pair=("bbrv1", "cubic"), aqm="fifo",
        buffer_bdp=2.0, bottleneck_bw_bps=20e6, seed=1,
    ))
    print(result.jain_index, result.link_utilization)
"""

from repro._version import __version__
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.fairness import jain_index
from repro.metrics.summary import ExperimentResult

__all__ = [
    "__version__",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "jain_index",
]
