"""repro — reproduction of "Elephants Sharing the Highway" (SC-W 2023).

A from-scratch packet-level network simulator (discrete-event engine,
dumbbell testbed, Linux-style TCP with pluggable congestion control and
AQM disciplines) plus a fast fluid-model engine, an iperf3-style traffic
generator, and the full experiment/analysis pipeline regenerating every
table and figure of the paper.

Quickstart (the stable API — :mod:`repro.api`, docs/SCENARIO.md)::

    from repro import Scenario, run

    result = run(Scenario(), engine="fluid")
    print(result.jain_index, result.link_utilization)

The legacy entry points (:class:`ExperimentConfig` + ``run_experiment``)
remain supported; the scenario IR lowers to them byte-identically.
"""

from repro._version import __version__
from repro.api import Scenario, load_store, run, sweep, validate
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.fairness import jain_index
from repro.metrics.summary import ExperimentResult

__all__ = [
    "__version__",
    "Scenario",
    "run",
    "sweep",
    "validate",
    "load_store",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "jain_index",
]
