"""Cross-engine validation harness: one scenario, every backend, diffed.

Generalizes the hand-rolled engine-agreement integration tests into an
operational surface (``repro validate``): compile one :class:`Scenario`
to each requested engine, run it, and diff every engine pair under a
*declared tolerance policy* instead of ad-hoc asserts.

The policy distinguishes two comparison regimes by engine *family*
(``packet`` vs ``fluid`` — ``fluid_batched`` is the same family as
``fluid``):

- **same family** (fluid vs fluid_batched, or packet vs packet): the
  engines promise bit-identical outcomes, so the pair is compared
  **exactly** — zero drift tolerance *and* a field-by-field diff of the
  full canonical result dicts (everything but ``wallclock_s`` and the
  engine tags).  Any mismatch is a determinism bug, not model error.
- **cross family** (packet vs fluid*): different models of the same
  scenario.  Jain and φ must agree within a loose absolute band; the
  retransmission count is *ungated* (the fluid model's loss proxy is not
  the DES's per-packet accounting — see docs/SCENARIO.md for the
  tolerance policy rationale).

The drift math itself is :mod:`repro.obs.drift` — the same detector the
campaign CI gate uses — applied to in-memory single-run "distributions".
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.summary import ExperimentResult
from repro.obs.drift import (
    DriftReport,
    DriftTolerance,
    detect_drift_cells,
    distributions_from_rows,
)
from repro.scenario.compile import ENGINES, run_scenario
from repro.scenario.ir import Scenario, ScenarioError

#: Engine -> model family.  Same-family pairs must agree bit-for-bit.
ENGINE_FAMILY: Dict[str, str] = {
    "packet": "packet",
    "fluid": "fluid",
    "fluid_batched": "fluid",
}

#: Same model family: the pair must not differ at all.
EXACT = DriftTolerance(jain=0.0, phi=0.0, rr_rel=0.0, rr_abs=0.0)

#: Different models of one scenario: loose fairness band, RR ungated
#: (retransmit accounting is model-specific).
CROSS_MODEL = DriftTolerance(jain=0.2, phi=0.2, rr_rel=math.inf, rr_abs=math.inf)

#: Result fields excluded from the exact same-family diff: wall clock is
#: nondeterministic, and the engine tags differ by construction.
_EXACT_IGNORED_FIELDS = ("wallclock_s", "engine")


def tolerance_for(engine_a: str, engine_b: str) -> DriftTolerance:
    """The declared tolerance for one engine pair (by model family)."""
    if ENGINE_FAMILY[engine_a] == ENGINE_FAMILY[engine_b]:
        return EXACT
    return CROSS_MODEL


def _exact_comparable(result: ExperimentResult) -> str:
    d = result.to_dict()
    for key in _EXACT_IGNORED_FIELDS:
        d.pop(key, None)
    config = dict(d.get("config") or {})
    config.pop("engine", None)
    d["config"] = config
    return json.dumps(d, sort_keys=True)


@dataclass
class EnginePairReport:
    """One engine pair diffed under its declared tolerance."""

    engine_a: str
    engine_b: str
    tolerance: DriftTolerance
    drift: DriftReport
    #: True when the pair was held to bit-identity (same model family).
    exact: bool = False
    #: For exact pairs: result fields whose values differ (must be empty).
    exact_mismatch: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.drift.clean and not self.exact_mismatch


@dataclass
class ValidationReport:
    """Every engine's result for one scenario plus all pairwise diffs."""

    scenario: Scenario
    engines: Tuple[str, ...]
    results: Dict[str, ExperimentResult]
    pairs: List[EnginePairReport] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every engine pair agreed within its tolerance."""
        return all(p.clean for p in self.pairs)


def validate_scenario(
    scenario: Scenario,
    engines: Sequence[str] = ("packet", "fluid"),
    *,
    tolerances: Optional[Mapping[Tuple[str, str], DriftTolerance]] = None,
    runner: Callable[[Scenario, str], ExperimentResult] = run_scenario,
) -> ValidationReport:
    """Run ``scenario`` on each engine and diff every pair.

    ``tolerances`` overrides the family policy for specific (a, b) pairs
    (order-normalized).  ``runner`` is injectable for tests.  Raises
    :class:`ScenarioError` on unknown engines or fewer than two.
    """
    engines = tuple(engines)
    if len(engines) < 2:
        raise ScenarioError(
            f"engines: need at least two engines to cross-validate, got {list(engines)}"
        )
    for engine in engines:
        if engine not in ENGINES:
            raise ScenarioError(
                f"engines: unknown backend {engine!r}; choose from {list(ENGINES)}"
            )
    if len(set(engines)) != len(engines):
        raise ScenarioError(f"engines: duplicate engine in {list(engines)}")

    results: Dict[str, ExperimentResult] = {
        engine: runner(scenario, engine) for engine in engines
    }

    report = ValidationReport(scenario=scenario, engines=engines, results=results)
    for i, a in enumerate(engines):
        for b in engines[i + 1:]:
            tol = None
            if tolerances:
                tol = tolerances.get((a, b)) or tolerances.get((b, a))
            if tol is None:
                tol = tolerance_for(a, b)
            exact = ENGINE_FAMILY[a] == ENGINE_FAMILY[b]
            # The drift detector strips engine from the cell identity, so
            # both single-result "sets" pool into the same cell.
            drift = detect_drift_cells(
                distributions_from_rows([results[a].to_dict()], source=f"engine {a}"),
                distributions_from_rows([results[b].to_dict()], source=f"engine {b}"),
                tolerance=tol,
            )
            pair = EnginePairReport(
                engine_a=a, engine_b=b, tolerance=tol, drift=drift, exact=exact
            )
            if exact and _exact_comparable(results[a]) != _exact_comparable(results[b]):
                da = json.loads(_exact_comparable(results[a]))
                db = json.loads(_exact_comparable(results[b]))
                pair.exact_mismatch = sorted(
                    k for k in set(da) | set(db) if da.get(k) != db.get(k)
                )
            report.pairs.append(pair)
    return report


def render_validation_report(report: ValidationReport, *, verbose: bool = False) -> str:
    """Human-readable cross-engine validation report for the CLI."""
    lines: List[str] = []
    for engine in report.engines:
        r = report.results[engine]
        lines.append(
            f"{engine:>13s}: jain={r.jain_index:.6f} phi={r.link_utilization:.6f} "
            f"rr={r.total_retransmits} ({r.wallclock_s:.2f}s wall)"
        )
    for pair in report.pairs:
        regime = "exact" if pair.exact else "cross-model"
        if pair.clean:
            lines.append(f"OK    {pair.engine_a} vs {pair.engine_b} [{regime}]")
        else:
            lines.append(f"DRIFT {pair.engine_a} vs {pair.engine_b} [{regime}]")
            for d in pair.drift.drifted:
                lines.append(
                    f"      {d.metric}: {d.mean_a:.6g} -> {d.mean_b:.6g} "
                    f"(|Δ|={d.delta:.6g} > tol={d.tolerance:.6g})"
                )
            if pair.exact_mismatch:
                lines.append(
                    f"      exact-comparison mismatch in fields: {pair.exact_mismatch}"
                )
        if verbose and not pair.exact:
            lines.append(
                f"      tolerance: jain<={pair.tolerance.jain} "
                f"phi<={pair.tolerance.phi} rr=ungated"
            )
    lines.append(
        "cross-engine agreement: clean"
        if report.clean
        else "cross-engine agreement: DRIFT DETECTED"
    )
    return "\n".join(lines)
