"""The declarative scenario IR (ROADMAP item 5).

A :class:`Scenario` is the single, engine-agnostic description of one
experiment: *what* is simulated (topology, flows, AQM, faults, duration,
sampling), never *how* (the backend is a runtime flag passed to the
compilers in :mod:`repro.scenario.compile`).  The IR is:

- **declarative** — plain frozen dataclasses of typed sub-specs
  (:class:`TopologySpec`, :class:`FlowSpec`, :class:`AqmSpec`,
  :class:`SamplingSpec`), JSON-round-trippable via :meth:`Scenario.to_dict`
  / :meth:`Scenario.from_dict` with path-qualified validation errors;
- **versioned** — documents carry ``"version"`` so future IR revisions
  can migrate old files;
- **canonical** — :meth:`Scenario.canonical_json` is byte-stable under
  field reordering, and :meth:`Scenario.cache_key` is *the same* content
  address the result cache computes for the equivalent legacy
  :class:`~repro.experiments.config.ExperimentConfig`, so IR and legacy
  submissions of one experiment collide on one cache entry;
- **a strict superset hook** — ``FlowSpec.start_s`` / ``size_bytes`` and
  ``TopologySpec.kind`` are extension points (mice, finite transfers,
  parking-lot topologies).  Setting them beyond today's engine support
  fails *at compile time* with a clear :class:`ScenarioError`, not midway
  through a run.

The legacy façade: :meth:`Scenario.from_experiment_config` /
:meth:`Scenario.to_experiment_config` translate losslessly in both
directions — ``to_experiment_config`` reproduces a byte-identical
``canonical_dict()``, which is what keeps every golden fixture, cache
key, and stored result unchanged.  See docs/SCENARIO.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.cca.registry import canonical_cca_name
from repro.experiments.config import ExperimentConfig, legacy_construction
from repro.units import mbps

#: Current IR document version.
SCENARIO_VERSION = 1

#: Topology kinds the compilers can lower today.  "parking_lot" and
#: friends are reserved extension points: they parse as *names* nowhere —
#: an unknown kind is rejected at validation with a pointer here.
TOPOLOGY_KINDS: Tuple[str, ...] = ("dumbbell",)


class ScenarioError(ValueError):
    """An invalid scenario document, or an IR instance the target backend
    cannot express.  The message carries the dotted field path."""


def _err(path: str, message: str) -> ScenarioError:
    return ScenarioError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise _err(path, message)


def _number(value: Any, path: str) -> Any:
    # Validate without coercing: int-vs-float distinctions survive JSON
    # round trips, and canonical bytes (hence cache keys) depend on them.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _err(path, f"expected a number, got {value!r}")
    return value


def _check_fields(d: Mapping[str, Any], allowed: Sequence[str], path: str) -> None:
    _require(isinstance(d, Mapping), path, f"expected an object, got {type(d).__name__}")
    unknown = sorted(set(d) - set(allowed))
    if unknown:
        raise _err(path, f"unknown field(s) {unknown}; allowed: {sorted(allowed)}")


@dataclass(frozen=True)
class TopologySpec:
    """Where the flows meet: the paper's dumbbell, parametrized.

    ``kind`` is the extension point for future multi-bottleneck shapes
    (parking-lot); everything else maps one-to-one onto the dumbbell
    builder's geometry knobs.
    """

    kind: str = "dumbbell"
    bottleneck_bw_bps: float = mbps(100)
    buffer_bdp: float = 2.0
    mss_bytes: int = 8900
    scale: float = 1.0
    delay_multiplier: float = 1.0
    client_delay_multipliers: Tuple[float, float] = (1.0, 1.0)
    trunk_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        _require(
            self.kind in TOPOLOGY_KINDS,
            "topology.kind",
            f"unknown kind {self.kind!r}; supported: {list(TOPOLOGY_KINDS)} "
            "(parking-lot and asymmetric topologies are planned extension "
            "points — see docs/SCENARIO.md)",
        )
        _require(self.bottleneck_bw_bps > 0, "topology.bottleneck_bw_bps", "must be positive")
        _require(self.buffer_bdp > 0, "topology.buffer_bdp", "must be positive")
        _require(self.mss_bytes > 0, "topology.mss_bytes", "must be positive")
        _require(self.scale > 0, "topology.scale", "must be positive")
        _require(self.delay_multiplier > 0, "topology.delay_multiplier", "must be positive")
        _require(
            0.0 <= self.trunk_loss_rate < 1.0,
            "topology.trunk_loss_rate",
            "must be in [0, 1)",
        )
        object.__setattr__(
            self, "client_delay_multipliers", tuple(self.client_delay_multipliers)
        )
        _require(
            len(self.client_delay_multipliers) == 2
            and all(m > 0 for m in self.client_delay_multipliers),
            "topology.client_delay_multipliers",
            "must be two positive per-sender multipliers",
        )

    def to_dict(self) -> Dict[str, Any]:
        """Document form of the topology (every field explicit)."""
        return {
            "kind": self.kind,
            "bottleneck_bw_bps": self.bottleneck_bw_bps,
            "buffer_bdp": self.buffer_bdp,
            "mss_bytes": self.mss_bytes,
            "scale": self.scale,
            "delay_multiplier": self.delay_multiplier,
            "client_delay_multipliers": list(self.client_delay_multipliers),
            "trunk_loss_rate": self.trunk_loss_rate,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], path: str = "topology") -> "TopologySpec":
        _check_fields(d, [f.name for f in fields(cls)], path)
        kwargs = dict(d)
        if "client_delay_multipliers" in kwargs:
            cdm = kwargs["client_delay_multipliers"]
            _require(
                isinstance(cdm, (list, tuple)),
                f"{path}.client_delay_multipliers",
                "expected a list of two numbers",
            )
            kwargs["client_delay_multipliers"] = tuple(
                _number(m, f"{path}.client_delay_multipliers[{i}]")
                for i, m in enumerate(cdm)
            )
        for key in ("bottleneck_bw_bps", "buffer_bdp", "scale", "delay_multiplier",
                    "trunk_loss_rate"):
            if key in kwargs:
                kwargs[key] = _number(kwargs[key], f"{path}.{key}")
        if "mss_bytes" in kwargs:
            _require(
                isinstance(kwargs["mss_bytes"], int) and not isinstance(kwargs["mss_bytes"], bool),
                f"{path}.mss_bytes",
                f"expected an integer, got {kwargs['mss_bytes']!r}",
            )
        if "kind" in kwargs:
            _require(
                isinstance(kwargs["kind"], str), f"{path}.kind", "expected a string"
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class FlowSpec:
    """One group of identical flows from a sender node.

    ``count=None`` means "derive from the paper's Table 2 plan for the
    (unscaled) bottleneck tier".  ``start_s`` and ``size_bytes`` are
    extension points for short-flow (mice) workloads: today the engines
    only run long-lived elephants starting at t=0, and the compilers
    refuse anything else rather than silently ignoring it.
    """

    cca: str
    node: int = 0
    count: Optional[int] = None
    start_s: float = 0.0
    size_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "cca", canonical_cca_name(self.cca))
        except (ValueError, KeyError) as exc:
            raise _err("flows[].cca", str(exc)) from None
        _require(
            isinstance(self.node, int) and not isinstance(self.node, bool) and self.node >= 0,
            "flows[].node",
            f"expected a non-negative sender-node index, got {self.node!r}",
        )
        _require(
            self.count is None
            or (isinstance(self.count, int) and not isinstance(self.count, bool) and self.count >= 1),
            "flows[].count",
            f"expected a positive flow count or null (Table 2 plan), got {self.count!r}",
        )
        _require(self.start_s >= 0, "flows[].start_s", "must be >= 0")
        _require(
            self.size_bytes is None or self.size_bytes > 0,
            "flows[].size_bytes",
            "must be positive or null (unbounded elephant)",
        )

    def to_dict(self) -> Dict[str, Any]:
        """Document form of the flow group; extension-point defaults omitted."""
        d: Dict[str, Any] = {"cca": self.cca, "node": self.node}
        if self.count is not None:
            d["count"] = self.count
        if self.start_s:
            d["start_s"] = self.start_s
        if self.size_bytes is not None:
            d["size_bytes"] = self.size_bytes
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], path: str = "flows[]") -> "FlowSpec":
        _check_fields(d, [f.name for f in fields(cls)], path)
        _require("cca" in d, path, "missing required field 'cca'")
        kwargs = dict(d)
        if "start_s" in kwargs:
            kwargs["start_s"] = _number(kwargs["start_s"], f"{path}.start_s")
        try:
            return cls(**kwargs)
        except ScenarioError as exc:
            # Construction errors carry the generic "flows[]." prefix;
            # substitute the indexed document path.
            raise ScenarioError(str(exc).replace("flows[]", path, 1)) from None


@dataclass(frozen=True)
class AqmSpec:
    """The bottleneck queue discipline: name, ECN marking, tuning params."""

    name: str = "fifo"
    ecn: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(
            self.name in ("fifo", "red", "fq_codel", "codel", "pie"),
            "aqm.name",
            f"unknown AQM {self.name!r}",
        )
        _require(isinstance(self.ecn, bool), "aqm.ecn", "expected true/false")
        _require(isinstance(self.params, Mapping), "aqm.params", "expected an object")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> Dict[str, Any]:
        """Document form of the AQM; ``ecn=False`` and empty params omitted."""
        d: Dict[str, Any] = {"name": self.name}
        if self.ecn:
            d["ecn"] = True
        if self.params:
            d["params"] = dict(self.params)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], path: str = "aqm") -> "AqmSpec":
        _check_fields(d, [f.name for f in fields(cls)], path)
        return cls(**dict(d))


@dataclass(frozen=True)
class SamplingSpec:
    """Time-series cadences, folding the per-engine ``*_interval_s`` knobs.

    All three are opt-in (``None`` = off) and outcome-neutral: sampling a
    run never changes what it computes (see docs/OBSERVABILITY.md).
    ``queue_interval_s`` is packet-engine-only today.
    """

    throughput_interval_s: Optional[float] = None
    queue_interval_s: Optional[float] = None
    fairness_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("throughput_interval_s", "queue_interval_s", "fairness_interval_s"):
            value = getattr(self, name)
            _require(
                value is None or (isinstance(value, (int, float)) and value > 0),
                f"sampling.{name}",
                f"expected a positive cadence in seconds or null, got {value!r}",
            )

    def to_dict(self) -> Dict[str, Any]:
        """Document form of the sampling plan; unset cadences omitted."""
        return {
            name: getattr(self, name)
            for name in ("throughput_interval_s", "queue_interval_s", "fairness_interval_s")
            if getattr(self, name) is not None
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], path: str = "sampling") -> "SamplingSpec":
        _check_fields(d, [f.name for f in fields(cls)], path)
        return cls(**dict(d))


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment: topology + flows + AQM + faults +
    duration + sampling.  Engine choice is *not* part of the scenario —
    it is the runtime flag the compilers take."""

    topology: TopologySpec = field(default_factory=TopologySpec)
    flows: Tuple[FlowSpec, ...] = (
        FlowSpec(cca="bbrv1", node=0),
        FlowSpec(cca="cubic", node=1),
    )
    aqm: AqmSpec = field(default_factory=AqmSpec)
    faults: Tuple[Dict[str, Any], ...] = ()
    duration_s: float = 30.0
    warmup_s: float = 0.0
    seed: int = 0
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    version: int = SCENARIO_VERSION

    def __post_init__(self) -> None:
        _require(
            self.version == SCENARIO_VERSION,
            "version",
            f"unsupported scenario version {self.version!r} "
            f"(this release reads version {SCENARIO_VERSION})",
        )
        object.__setattr__(self, "flows", tuple(self.flows))
        _require(bool(self.flows), "flows", "need at least one flow spec")
        for i, flow in enumerate(self.flows):
            _require(
                isinstance(flow, FlowSpec),
                f"flows[{i}]",
                f"expected a FlowSpec, got {type(flow).__name__}",
            )
            if self.topology.kind == "dumbbell":
                _require(
                    flow.node in (0, 1),
                    f"flows[{i}].node",
                    "the dumbbell has two sender nodes (0 and 1)",
                )
        _require(self.duration_s > 0, "duration_s", "must be positive")
        _require(
            0 <= self.warmup_s < self.duration_s,
            "warmup_s",
            "must be in [0, duration_s)",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            "seed",
            f"expected an integer, got {self.seed!r}",
        )
        try:
            from repro.faults.spec import normalize_faults

            object.__setattr__(self, "faults", tuple(normalize_faults(self.faults)))
        except (TypeError, ValueError) as exc:
            raise _err("faults", str(exc)) from None

    # -- JSON document form -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical nested-dict form (inverse of :meth:`from_dict`).

        Sub-spec fields at their defaults are kept only where they carry
        identity (topology geometry); opt-in fields (faults, sampling
        cadences, extension knobs) are omitted when off, so the dict — and
        thus :meth:`canonical_json` — is minimal and reorder-stable.
        """
        d: Dict[str, Any] = {
            "version": self.version,
            "topology": self.topology.to_dict(),
            "flows": [f.to_dict() for f in self.flows],
            "aqm": self.aqm.to_dict(),
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
        }
        if self.faults:
            d["faults"] = [dict(f) for f in self.faults]
        sampling = self.sampling.to_dict()
        if sampling:
            d["sampling"] = sampling
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Scenario":
        """Parse and validate a scenario document.

        Raises :class:`ScenarioError` with a dotted field path on any
        schema violation — the error surface ``repro serve`` turns into
        clean HTTP 400s.
        """
        _check_fields(
            d,
            ["version", "topology", "flows", "aqm", "faults",
             "duration_s", "warmup_s", "seed", "sampling"],
            "scenario",
        )
        kwargs: Dict[str, Any] = {}
        if "version" in d:
            kwargs["version"] = d["version"]
        if "topology" in d:
            kwargs["topology"] = TopologySpec.from_dict(d["topology"])
        if "flows" in d:
            flows = d["flows"]
            _require(
                isinstance(flows, Sequence) and not isinstance(flows, (str, bytes)),
                "flows",
                "expected a list of flow specs",
            )
            kwargs["flows"] = tuple(
                FlowSpec.from_dict(f, f"flows[{i}]") for i, f in enumerate(flows)
            )
        if "aqm" in d:
            kwargs["aqm"] = AqmSpec.from_dict(d["aqm"])
        if "faults" in d:
            faults = d["faults"]
            _require(
                isinstance(faults, Sequence) and not isinstance(faults, (str, bytes)),
                "faults",
                "expected a list of fault specs",
            )
            kwargs["faults"] = tuple(faults)
        for key in ("duration_s", "warmup_s"):
            if key in d:
                kwargs[key] = _number(d[key], key)
        if "seed" in d:
            kwargs["seed"] = d["seed"]
        if "sampling" in d:
            kwargs["sampling"] = SamplingSpec.from_dict(d["sampling"])
        try:
            return cls(**kwargs)
        except ScenarioError:
            raise
        except (TypeError, ValueError) as exc:
            raise ScenarioError(str(exc)) from None

    def canonical_json(self, *, indent: Optional[int] = None) -> str:
        """Deterministic serialized form: sorted keys, minimal fields.

        Two documents that parse to the same scenario — whatever their
        field order or explicit-default noise — render to the same bytes.
        """
        if indent is None:
            return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def cache_key(self, engine: str = "packet", salt: Optional[str] = None) -> str:
        """The content address a result cache uses for this scenario.

        Delegates to the legacy config's key derivation, so an IR
        submission and a hand-built :class:`ExperimentConfig` of the same
        experiment are *the same* cache entry.  ``salt=None`` uses the
        release-default salt (see :func:`repro.experiments.cache.default_salt`).
        """
        from repro.experiments.cache import config_key, default_salt

        if salt is None:
            salt = default_salt()
        return config_key(self.to_experiment_config(engine=engine), salt)

    def label(self, engine: str = "packet") -> str:
        """Compact id (the legacy config label) for stores and reports."""
        return self.to_experiment_config(engine=engine).label()

    # -- legacy façade ------------------------------------------------------------

    @classmethod
    def from_experiment_config(cls, config: ExperimentConfig) -> "Scenario":
        """Lift a legacy config into the IR (lossless; engine dropped).

        The engine is deliberately *not* captured — pass it back to
        :meth:`to_experiment_config` (or the compilers) as the runtime
        backend flag.
        """
        return cls(
            topology=TopologySpec(
                kind="dumbbell",
                bottleneck_bw_bps=config.bottleneck_bw_bps,
                buffer_bdp=config.buffer_bdp,
                mss_bytes=config.mss_bytes,
                scale=config.scale,
                delay_multiplier=config.delay_multiplier,
                client_delay_multipliers=tuple(config.client_delay_multipliers),
                trunk_loss_rate=config.trunk_loss_rate,
            ),
            flows=(
                FlowSpec(cca=config.cca_pair[0], node=0, count=config.flows_per_node),
                FlowSpec(cca=config.cca_pair[1], node=1, count=config.flows_per_node),
            ),
            aqm=AqmSpec(
                name=config.aqm, ecn=config.ecn_mode, params=dict(config.aqm_params)
            ),
            faults=tuple(config.faults),
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            seed=config.seed,
            sampling=SamplingSpec(
                throughput_interval_s=config.sample_interval_s,
                queue_interval_s=config.queue_monitor_interval_s,
                fairness_interval_s=config.fairness_interval_s,
            ),
        )

    def to_experiment_config(self, engine: str = "packet") -> ExperimentConfig:
        """Lower the IR to the engines' native config for ``engine``.

        Refuses (with a precise :class:`ScenarioError`) any scenario the
        legacy config cannot express — extension-point fields in use, or
        flow layouts beyond one spec per dumbbell sender node.
        """
        _require(
            self.topology.kind == "dumbbell",
            "topology.kind",
            f"backend {engine!r} can only lower the dumbbell today",
        )
        by_node: Dict[int, FlowSpec] = {}
        for i, flow in enumerate(self.flows):
            _require(
                flow.node not in by_node,
                f"flows[{i}]",
                f"multiple flow specs for sender node {flow.node}; the "
                "engines take one CCA x count per node",
            )
            _require(
                flow.start_s == 0.0,
                f"flows[{i}].start_s",
                "staggered flow starts (mice workloads) are not supported "
                "by the engines yet",
            )
            _require(
                flow.size_bytes is None,
                f"flows[{i}].size_bytes",
                "finite transfer sizes are not supported by the engines yet",
            )
            by_node[flow.node] = flow
        _require(
            set(by_node) == {0, 1},
            "flows",
            f"the dumbbell needs exactly one flow spec per sender node "
            f"(0 and 1), got nodes {sorted(by_node)}",
        )
        counts = {by_node[0].count, by_node[1].count}
        _require(
            len(counts) == 1,
            "flows",
            "per-node flow counts must match (flows_per_node is one knob "
            f"on the engines), got {by_node[0].count} vs {by_node[1].count}",
        )
        with legacy_construction():
            try:
                return ExperimentConfig(
                    cca_pair=(by_node[0].cca, by_node[1].cca),
                    aqm=self.aqm.name,
                    buffer_bdp=self.topology.buffer_bdp,
                    bottleneck_bw_bps=self.topology.bottleneck_bw_bps,
                    duration_s=self.duration_s,
                    mss_bytes=self.topology.mss_bytes,
                    seed=self.seed,
                    engine=engine,
                    scale=self.topology.scale,
                    flows_per_node=by_node[0].count,
                    warmup_s=self.warmup_s,
                    ecn_mode=self.aqm.ecn,
                    aqm_params=dict(self.aqm.params),
                    delay_multiplier=self.topology.delay_multiplier,
                    client_delay_multipliers=tuple(self.topology.client_delay_multipliers),
                    trunk_loss_rate=self.topology.trunk_loss_rate,
                    sample_interval_s=self.sampling.throughput_interval_s,
                    queue_monitor_interval_s=self.sampling.queue_interval_s,
                    fairness_interval_s=self.sampling.fairness_interval_s,
                    faults=list(self.faults),
                )
            except ValueError as exc:
                raise ScenarioError(f"engine {engine!r} rejected the scenario: {exc}") from None
