"""The declarative scenario IR and its per-backend compilers.

One scenario language (:class:`Scenario` and its typed sub-specs),
compiled to every engine (:mod:`repro.scenario.compile`), with a
cross-engine validation harness (:mod:`repro.scenario.validate`).
See docs/SCENARIO.md.
"""

from repro.scenario.compile import (
    COMPILERS,
    ENGINES,
    compile_fluid,
    compile_fluid_batched,
    compile_packet,
    compile_scenario,
    run_scenario,
)
from repro.scenario.ir import (
    SCENARIO_VERSION,
    AqmSpec,
    FlowSpec,
    SamplingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
)
from repro.scenario.validate import (
    CROSS_MODEL,
    EXACT,
    EnginePairReport,
    ValidationReport,
    render_validation_report,
    tolerance_for,
    validate_scenario,
)

__all__ = [
    "SCENARIO_VERSION",
    "Scenario",
    "ScenarioError",
    "TopologySpec",
    "FlowSpec",
    "AqmSpec",
    "SamplingSpec",
    "ENGINES",
    "COMPILERS",
    "compile_packet",
    "compile_fluid",
    "compile_fluid_batched",
    "compile_scenario",
    "run_scenario",
    "EXACT",
    "CROSS_MODEL",
    "tolerance_for",
    "validate_scenario",
    "ValidationReport",
    "EnginePairReport",
    "render_validation_report",
]
