"""Per-backend compilers: lower one :class:`Scenario` to each engine.

The IR describes *what* to simulate; a compiler lowers it to the config
the chosen backend executes.  All three engines currently share the
legacy :class:`~repro.experiments.config.ExperimentConfig` as their
native input, so each compiler is a thin lowering through
:meth:`Scenario.to_experiment_config` — but the per-engine entry points
are the contract: a future backend with its own native config plugs in
here without touching the IR, and engine-specific capability checks
(e.g. faults are packet-only) surface as :class:`ScenarioError` at
compile time, not mid-run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.metrics.summary import ExperimentResult
from repro.scenario.ir import Scenario, ScenarioError

#: Every backend a scenario can compile to, in canonical order.
ENGINES: Tuple[str, ...] = ("packet", "fluid", "fluid_batched")


def compile_packet(scenario: Scenario) -> ExperimentConfig:
    """Lower to the packet-level DES backend."""
    return scenario.to_experiment_config(engine="packet")


def compile_fluid(scenario: Scenario) -> ExperimentConfig:
    """Lower to the scalar fluid-ODE backend."""
    return scenario.to_experiment_config(engine="fluid")


def compile_fluid_batched(scenario: Scenario) -> ExperimentConfig:
    """Lower to the vectorized (numpy) fluid backend."""
    return scenario.to_experiment_config(engine="fluid_batched")


#: Engine name -> compiler.
COMPILERS: Dict[str, Callable[[Scenario], ExperimentConfig]] = {
    "packet": compile_packet,
    "fluid": compile_fluid,
    "fluid_batched": compile_fluid_batched,
}


def compile_scenario(scenario: Scenario, engine: str = "packet") -> ExperimentConfig:
    """Lower ``scenario`` for ``engine``; :class:`ScenarioError` on an
    unknown engine or a scenario the backend cannot express."""
    try:
        compiler = COMPILERS[engine]
    except KeyError:
        raise ScenarioError(
            f"engine: unknown backend {engine!r}; choose from {list(ENGINES)}"
        ) from None
    return compiler(scenario)


def run_scenario(
    scenario: Scenario,
    engine: str = "packet",
    telemetry: Optional[Any] = None,
) -> ExperimentResult:
    """Compile and execute one scenario on one backend.

    The single-experiment entry point of the IR world: everything a
    ``repro run`` does, minus flag parsing.  ``telemetry`` is forwarded
    to the engine dispatcher (see :func:`repro.experiments.runner.run_experiment`).
    """
    from repro.experiments.runner import run_experiment

    config = compile_scenario(scenario, engine)
    return run_experiment(config, telemetry=telemetry)
