"""Seeded random-number streams.

Every stochastic component in the simulator (RED's drop lottery, FQ_CoDel's
hash perturbation, flow start jitter, ...) pulls from its *own* named
stream derived from the experiment seed via ``numpy.random.SeedSequence``.
Adding a new consumer therefore never perturbs the draws seen by existing
ones, which keeps regression baselines stable.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A family of independent, reproducible ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable 32-bit hash of the name -> child spawn key.  zlib.crc32 is
            # deterministic across processes (unlike builtin hash()).
            child = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(child,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
