"""Discrete-event simulation core.

The engine keeps time in integer nanoseconds and executes events in
(time, insertion-order) order, which makes every run fully deterministic
for a given seed.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import NullTracer, Tracer

__all__ = ["Event", "Simulator", "RngStreams", "Tracer", "NullTracer"]
