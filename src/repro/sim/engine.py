"""The discrete-event simulation engine.

A :class:`Simulator` owns a binary heap of pending events.  Each heap
entry is a 5-tuple ``(time, seq, event, fn, args)``: an absolute firing
time in integer nanoseconds, a monotonically increasing sequence number
(the deterministic tie-breaker for events scheduled at the same instant),
an optional :class:`Event` handle, and the callback.  The ``(int, int)``
key prefix compares in C, so heapq never calls back into Python for
ordering.

Two scheduling tiers keep the hot path lean:

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle that supports :meth:`Event.cancel` — the pattern
  TCP retransmission timers rely on (they are rescheduled on every ACK).
- :meth:`Simulator.call_later` / :meth:`Simulator.call_at` are the
  fire-and-forget tier: no handle is allocated at all, which is what the
  per-packet datapath (link serialization, delivery) uses.

Cancelled events are skipped lazily ("tombstones"), and the heap is
compacted in place once tombstones outnumber live entries, so timer churn
cannot degrade pop cost over a long run.
"""

from __future__ import annotations

import heapq
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

#: Compact the heap only when there are at least this many tombstones
#: (small heaps never pay the scan) *and* they outnumber live entries.
_COMPACT_MIN_TOMBSTONES = 64


class Event:
    """A cancellable scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # Inline of Simulator._note_cancel — cancel() runs once per
                # rescheduled TCP timer, i.e. once per ACK.
                n = sim._tombstones = sim._tombstones + 1
                if n >= _COMPACT_MIN_TOMBSTONES and n * 2 > len(sim._heap):
                    sim._compact()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time}ns seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)}>"


_new_event = Event.__new__


class Simulator:
    """Deterministic event loop with integer-nanosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, fired.append, 1)
    >>> _ = sim.schedule(50, fired.append, 2)
    >>> sim.run()
    >>> fired
    [2, 1]
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_events_processed",
                 "_tombstones", "profiler")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list = []
        self._seq: int = 0
        self._running = False
        self._events_processed: int = 0
        self._tombstones: int = 0
        #: Optional :class:`repro.obs.profile.EventLoopProfiler`.  ``None``
        #: (the default) keeps :meth:`run` on the uninstrumented loop —
        #: the check is once per run() call, never per event.
        self.profiler = None

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now.  Cancellable."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        time_ns = self.now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        # Direct slot assignment skips type.__call__/__init__ dispatch —
        # measurable when millions of timers are armed.
        ev = _new_event(Event)
        ev.time = time_ns
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        ev.cancelled = False
        ev._sim = self
        heappush(self._heap, (time_ns, seq, ev, fn, args))
        return ev

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``.  Cancellable."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = _new_event(Event)
        ev.time = time_ns
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        ev.cancelled = False
        ev._sim = self
        heappush(self._heap, (time_ns, seq, ev, fn, args))
        return ev

    def call_later(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` is allocated.

        The per-packet datapath uses this tier; it is meaningfully cheaper
        when millions of events are scheduled and none are ever cancelled.
        """
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + delay_ns, seq, None, fn, args))

    def call_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time_ns, seq, None, fn, args))

    # -- tombstone management ---------------------------------------------------

    def _note_cancel(self) -> None:
        """Account a newly cancelled pending event; compact when dominated."""
        n = self._tombstones = self._tombstones + 1
        if n >= _COMPACT_MIN_TOMBSTONES and n * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and restore the heap invariant."""
        heap = self._heap
        # In-place rebuild (slice assignment) so a run() loop holding a
        # local reference to the list keeps seeing the live heap.
        heap[:] = [e for e in heap if e[2] is None or not e[2].cancelled]
        heapify(heap)
        self._tombstones = 0

    # -- execution ------------------------------------------------------------

    def run(self, until_ns: Optional[int] = None) -> None:
        """Run events until the heap drains or simulated time passes ``until_ns``.

        When ``until_ns`` is given, events with ``time > until_ns`` stay
        queued and ``now`` is advanced to exactly ``until_ns``.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        if self.profiler is not None:
            return self._run_profiled(until_ns)
        self._running = True
        heap = self._heap
        pop = heappop
        fired = 0
        try:
            if until_ns is None:
                while heap:
                    time_ns, _, ev, fn, args = pop(heap)
                    if ev is not None:
                        if ev.cancelled:
                            self._tombstones -= 1
                            continue
                        ev.cancelled = True  # consumed: later cancel() is a no-op
                    self.now = time_ns
                    fired += 1
                    fn(*args)
            else:
                # Pop unconditionally and push back the single overshooting
                # entry at the end — one heap operation per event instead of
                # a peek + pop pair.
                while heap:
                    entry = pop(heap)
                    time_ns = entry[0]
                    if time_ns > until_ns:
                        heappush(heap, entry)
                        break
                    ev = entry[2]
                    if ev is not None:
                        if ev.cancelled:
                            self._tombstones -= 1
                            continue
                        ev.cancelled = True  # consumed
                    self.now = time_ns
                    fired += 1
                    entry[3](*entry[4])
        finally:
            self._events_processed += fired
            self._running = False
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def _run_profiled(self, until_ns: Optional[int] = None) -> None:
        """Profiled twin of :meth:`run`: identical event semantics, plus
        wall-time attribution into :attr:`profiler`.

        The dispatch order, ``now`` advancement, and tombstone handling
        are byte-for-byte the same as the plain loop — the profiler only
        changes *when the wall clock is read*, so simulation outcomes are
        bit-identical with profiling on or off.  With ``stride == 1`` a
        chained timestamp charges each iteration (heap pop included) to
        the event it dispatched; with ``stride > 1`` only every N-th
        iteration is timed and totals are scaled at snapshot time.
        """
        import time as _time

        prof = self.profiler
        observe = prof._observe
        perf = _time.perf_counter
        stride = prof.stride
        countdown = prof._countdown
        self._running = True
        heap = self._heap
        pop = heappop
        fired = 0
        sim_t0 = self.now
        loop_t0 = perf()
        t_prev = loop_t0
        try:
            while heap:
                entry = pop(heap)
                time_ns = entry[0]
                if until_ns is not None and time_ns > until_ns:
                    heappush(heap, entry)
                    break
                ev = entry[2]
                if ev is not None:
                    if ev.cancelled:
                        self._tombstones -= 1
                        continue
                    ev.cancelled = True  # consumed: later cancel() is a no-op
                self.now = time_ns
                fired += 1
                fn = entry[3]
                args = entry[4]
                if stride == 1:
                    fn(*args)
                    t_now = perf()
                    observe(fn, args, t_now - t_prev)
                    t_prev = t_now
                else:
                    countdown -= 1
                    if countdown <= 0:
                        t0 = perf()
                        fn(*args)
                        observe(fn, args, perf() - t0)
                        countdown = stride
                    else:
                        fn(*args)
        finally:
            prof._countdown = countdown
            prof._account_loop(perf() - loop_t0, fired, self.now - sim_t0)
            self._events_processed += fired
            self._running = False
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none left."""
        heap = self._heap
        while heap:
            time_ns, _, ev, fn, args = heappop(heap)
            if ev is not None:
                if ev.cancelled:
                    self._tombstones -= 1
                    continue
                ev.cancelled = True  # consumed
            self.now = time_ns
            self._events_processed += 1
            fn(*args)
            return True
        return False

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued events (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def telemetry(self) -> dict:
        """Event-loop health snapshot for the observability layer.

        Pull-based: the loop itself pays nothing — callers (metrics
        registry gauges, campaign progress) read these counters on their
        own cadence.
        """
        return {
            "now_ns": self.now,
            "events_processed": self._events_processed,
            "pending": len(self._heap),
            "tombstones": self._tombstones,
        }

    def peek_time(self) -> Optional[int]:
        """Firing time of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2] is not None and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None
