"""The discrete-event simulation engine.

A :class:`Simulator` owns a binary heap of pending :class:`Event` objects.
Each event carries an absolute firing time in integer nanoseconds, a
monotonically increasing sequence number (the deterministic tie-breaker for
events scheduled at the same instant), and a callback.

Events are cancellable: :meth:`Event.cancel` marks the event dead and the
run loop skips it cheaply instead of re-heapifying.  This is the pattern
TCP retransmission timers rely on (they are rescheduled on every ACK).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time}ns seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)}>"


class Simulator:
    """Deterministic event loop with integer-nanosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, fired.append, 1)
    >>> _ = sim.schedule(50, fired.append, 2)
    >>> sim.run()
    >>> fired
    [2, 1]
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        # Heap entries are (time, seq, Event): the int pair compares in C,
        # so heapq never falls back to Event.__lt__ (the hot path's cost).
        self._heap: list = []
        self._seq: int = 0
        self._running = False
        self._events_processed: int = 0

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, fn, *args)

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time_ns, seq, fn, args)
        heapq.heappush(self._heap, (time_ns, seq, ev))
        return ev

    # -- execution ------------------------------------------------------------

    def run(self, until_ns: Optional[int] = None) -> None:
        """Run events until the heap drains or simulated time passes ``until_ns``.

        When ``until_ns`` is given, events with ``time > until_ns`` stay
        queued and ``now`` is advanced to exactly ``until_ns``.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                time_ns, _, ev = heap[0]
                if ev.cancelled:
                    pop(heap)
                    continue
                if until_ns is not None and time_ns > until_ns:
                    break
                pop(heap)
                self.now = time_ns
                self._events_processed += 1
                ev.fn(*ev.args)
        finally:
            self._running = False
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none left."""
        heap = self._heap
        while heap:
            time_ns, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = time_ns
            self._events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued events (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed

    def peek_time(self) -> Optional[int]:
        """Firing time of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
