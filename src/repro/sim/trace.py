"""Lightweight tracing hooks.

The data path calls ``tracer.record(kind, time_ns, **fields)`` at interesting
points (enqueue drops, retransmissions, state transitions).  The default
:class:`NullTracer` makes these calls nearly free; tests and debugging swap
in a recording :class:`Tracer`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Tuple


class NullTracer:
    """Discards everything.  Used in production runs."""

    __slots__ = ()

    enabled = False

    def record(self, kind: str, time_ns: int, **fields: Any) -> None:
        """No-op."""


class Tracer:
    """Records every event as ``(kind, time_ns, fields)`` tuples."""

    __slots__ = ("events", "counts")

    enabled = True

    def __init__(self) -> None:
        self.events: List[Tuple[str, int, Dict[str, Any]]] = []
        self.counts: Counter = Counter()

    def record(self, kind: str, time_ns: int, **fields: Any) -> None:
        """Append one event and bump its kind counter."""
        self.events.append((kind, time_ns, fields))
        self.counts[kind] += 1

    def of_kind(self, kind: str) -> List[Tuple[str, int, Dict[str, Any]]]:
        """All recorded events of one kind, in time order."""
        return [ev for ev in self.events if ev[0] == kind]

    def clear(self) -> None:
        """Drop all recorded events and counters."""
        self.events.clear()
        self.counts.clear()


NULL_TRACER = NullTracer()
