"""Lightweight tracing hooks.

The data path calls ``tracer.record(kind, time_ns, **fields)`` at interesting
points (enqueue drops, retransmissions, state transitions).  The default
:class:`NullTracer` makes these calls nearly free; tests and debugging swap
in a recording :class:`Tracer`.  For long runs, use the *bounded*
:class:`repro.obs.flight.FlightRecorder`, which implements the same
``record`` protocol over a ring buffer instead of an unbounded list.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Tuple


class NullTracer:
    """Discards everything.  Used in production runs."""

    __slots__ = ()

    enabled = False

    def record(self, kind: str, time_ns: int, **fields: Any) -> None:
        """No-op."""


class Tracer:
    """Records every event as ``(kind, time_ns, fields)`` tuples."""

    __slots__ = ("events", "counts", "_by_kind")

    enabled = True

    def __init__(self) -> None:
        self.events: List[Tuple[str, int, Dict[str, Any]]] = []
        self.counts: Counter = Counter()
        # Per-kind index: repeated of_kind() queries (golden-trace tests
        # call it per kind per run) are O(matches), not O(total events).
        self._by_kind: Dict[str, List[Tuple[str, int, Dict[str, Any]]]] = {}

    def record(self, kind: str, time_ns: int, **fields: Any) -> None:
        """Append one event and bump its kind counter."""
        ev = (kind, time_ns, fields)
        self.events.append(ev)
        self.counts[kind] += 1
        index = self._by_kind.get(kind)
        if index is None:
            index = self._by_kind[kind] = []
        index.append(ev)

    def of_kind(self, kind: str) -> List[Tuple[str, int, Dict[str, Any]]]:
        """All recorded events of one kind, in time order."""
        return list(self._by_kind.get(kind, ()))

    def clear(self) -> None:
        """Drop all recorded events and counters."""
        self.events.clear()
        self.counts.clear()
        self._by_kind.clear()


NULL_TRACER = NullTracer()
