"""Per-interval throughput sampling.

The paper's iperf3 runs report per-interval receive rates; the
:class:`ThroughputSampler` polls receiver byte counters on a fixed
simulated-time cadence and exposes the resulting series (used for the
per-interval rows of the iperf-style JSON logs and for warmup-excluded
averages).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.units import NS_PER_SEC


class ThroughputSampler:
    """Samples named byte counters every ``interval_ns`` of simulated time.

    ``on_sample``, when set, is called after every completed sample (tick
    and the final :meth:`stop` flush alike) with ``(now_ns, rates)``
    where ``rates`` maps counter name to that interval's bits/second —
    the hook :mod:`repro.obs.fairness` uses to derive Jain/φ series from
    the same deltas the iperf-style series record.
    """

    def __init__(self, sim: Simulator, interval_ns: int):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.interval_ns = interval_ns
        self._counters: Dict[str, Callable[[], int]] = {}
        self._last: Dict[str, int] = {}
        self.series: Dict[str, List[float]] = {}
        self.timestamps_ns: List[int] = []
        self._running = False
        self._handle = None
        self._last_tick_ns = 0
        #: Optional per-sample callback ``(now_ns, {name: bps})``.
        self.on_sample: Optional[Callable[[int, Dict[str, float]], None]] = None

    def track(self, name: str, counter: Callable[[], int]) -> None:
        """Register a monotonically increasing byte counter."""
        if name in self._counters:
            raise ValueError(f"duplicate counter name {name!r}")
        self._counters[name] = counter
        self._last[name] = counter()
        self.series[name] = []

    def start(self) -> None:
        """Begin sampling (first sample lands one interval from now)."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self._last_tick_ns = self.sim.now
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def _sample(self, span_ns: int) -> None:
        """Record one interval of ``span_ns`` ending now."""
        self.timestamps_ns.append(self.sim.now)
        rates: Dict[str, float] = {}
        for name, counter in self._counters.items():
            value = counter()
            delta = value - self._last[name]
            self._last[name] = value
            # bits per second over the interval
            rate = delta * 8 * NS_PER_SEC / span_ns
            self.series[name].append(rate)
            rates[name] = rate
        self._last_tick_ns = self.sim.now
        if self.on_sample is not None:
            self.on_sample(self.sim.now, rates)

    def _tick(self) -> None:
        self._sample(self.interval_ns)
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        """Stop sampling, flushing the final partial interval (idempotent).

        Runs whose duration is not a multiple of the interval would
        otherwise silently drop the trailing bytes from ``series``; the
        flushed sample covers whatever span has elapsed since the last
        tick, with its rate normalized to that *actual* span.  Runs that
        end exactly on a tick flush nothing (the tick already sampled).
        """
        if not self._running:
            return
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        span_ns = self.sim.now - self._last_tick_ns
        if span_ns > 0:
            self._sample(span_ns)

    def mean_bps(self, name: str, *, skip_intervals: int = 0) -> float:
        """Average rate for ``name``, optionally discarding warmup intervals."""
        data = self.series[name][skip_intervals:]
        if not data:
            return 0.0
        return sum(data) / len(data)
