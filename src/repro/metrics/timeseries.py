"""Per-interval throughput sampling.

The paper's iperf3 runs report per-interval receive rates; the
:class:`ThroughputSampler` polls receiver byte counters on a fixed
simulated-time cadence and exposes the resulting series (used for the
per-interval rows of the iperf-style JSON logs and for warmup-excluded
averages).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.engine import Simulator
from repro.units import NS_PER_SEC


class ThroughputSampler:
    """Samples named byte counters every ``interval_ns`` of simulated time."""

    def __init__(self, sim: Simulator, interval_ns: int):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.interval_ns = interval_ns
        self._counters: Dict[str, Callable[[], int]] = {}
        self._last: Dict[str, int] = {}
        self.series: Dict[str, List[float]] = {}
        self.timestamps_ns: List[int] = []
        self._running = False

    def track(self, name: str, counter: Callable[[], int]) -> None:
        """Register a monotonically increasing byte counter."""
        if name in self._counters:
            raise ValueError(f"duplicate counter name {name!r}")
        self._counters[name] = counter
        self._last[name] = counter()
        self.series[name] = []

    def start(self) -> None:
        """Begin sampling (first sample lands one interval from now)."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self.sim.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self.timestamps_ns.append(self.sim.now)
        for name, counter in self._counters.items():
            value = counter()
            delta = value - self._last[name]
            self._last[name] = value
            # bits per second over the interval
            self.series[name].append(delta * 8 * NS_PER_SEC / self.interval_ns)
        self.sim.schedule(self.interval_ns, self._tick)

    def mean_bps(self, name: str, *, skip_intervals: int = 0) -> float:
        """Average rate for ``name``, optionally discarding warmup intervals."""
        data = self.series[name][skip_intervals:]
        if not data:
            return 0.0
        return sum(data) / len(data)
