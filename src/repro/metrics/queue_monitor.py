"""Router queue telemetry.

The paper's future work: "capture detailed router logs to gain a clearer
understanding of internal parameters and their impact on performance".
:class:`QueueMonitor` does that for the simulated bottleneck: it samples
the qdisc's backlog (bytes and packets), cumulative drops, ECN marks, and
— when the discipline exposes one — the RED average queue, on a fixed
simulated-time cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle avoided at runtime
    from repro.aqm.base import QueueDiscipline


@dataclass
class QueueSample:
    """One telemetry point."""

    time_ns: int
    backlog_bytes: int
    backlog_packets: int
    drops_total: int
    ecn_marks: int
    red_avg_bytes: float = float("nan")


@dataclass
class QueueTrace:
    """The collected series plus summary statistics."""

    samples: List[QueueSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def max_backlog_bytes(self) -> int:
        return max((s.backlog_bytes for s in self.samples), default=0)

    @property
    def mean_backlog_bytes(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.backlog_bytes for s in self.samples) / len(self.samples)

    def occupancy(self, limit_bytes: int) -> float:
        """Mean backlog as a fraction of the configured limit."""
        if limit_bytes <= 0:
            raise ValueError("limit must be positive")
        return self.mean_backlog_bytes / limit_bytes

    def drop_intervals(self) -> List[int]:
        """Per-interval drop deltas (len == len(samples))."""
        out: List[int] = []
        prev = 0
        for s in self.samples:
            out.append(s.drops_total - prev)
            prev = s.drops_total
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Column-oriented JSON-ready form of the trace."""
        return {
            "time_ns": [s.time_ns for s in self.samples],
            "backlog_bytes": [s.backlog_bytes for s in self.samples],
            "backlog_packets": [s.backlog_packets for s in self.samples],
            "drops_total": [s.drops_total for s in self.samples],
            "ecn_marks": [s.ecn_marks for s in self.samples],
            "red_avg_bytes": [s.red_avg_bytes for s in self.samples],
        }


class QueueMonitor:
    """Samples one queue discipline on a fixed cadence."""

    def __init__(self, sim: Simulator, qdisc: "QueueDiscipline", interval_ns: int):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.qdisc = qdisc
        self.interval_ns = interval_ns
        self.trace = QueueTrace()
        self._running = False

    def start(self) -> None:
        """Begin sampling (first sample lands one interval from now)."""
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        self.sim.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        q = self.qdisc
        self.trace.samples.append(
            QueueSample(
                time_ns=self.sim.now,
                backlog_bytes=q.bytes_queued,
                backlog_packets=q.packets_queued,
                drops_total=q.stats.dropped_total,
                ecn_marks=q.stats.ecn_marked,
                red_avg_bytes=float(getattr(q, "avg", float("nan"))),
            )
        )
        self.sim.schedule(self.interval_ns, self._tick)
