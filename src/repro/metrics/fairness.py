"""Jain's fairness index (paper Equation 2).

``J = (sum S_i)^2 / (n * sum S_i^2)`` over per-sender throughputs.  The
paper evaluates the *per-sender* index with n = 2 (each sender node's
aggregate throughput), which :func:`jain_index` handles as the general
n-ary case.
"""

from __future__ import annotations

import sys
from typing import Sequence


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index in [1/n, 1]; 1.0 for an empty/all-zero input."""
    n = len(throughputs)
    if n == 0:
        return 1.0
    for s in throughputs:
        if s < 0:
            raise ValueError(f"throughputs must be non-negative, got {s}")
    total = float(sum(throughputs))
    sum_sq = float(sum(s * s for s in throughputs))
    if total == 0.0 or sum_sq == 0.0:
        # All zero (or subnormal enough to underflow): degenerate but equal.
        return 1.0
    if sum_sq < sys.float_info.min:
        # The squares underflowed into subnormals and lost precision (the
        # ratio can then exceed 1).  Rescale by the max — scale-invariant,
        # and unreachable for any realistic throughput, so the normal path
        # stays bit-identical.
        peak = max(throughputs)
        scaled = [s / peak for s in throughputs]
        total = float(sum(scaled))
        sum_sq = float(sum(s * s for s in scaled))
    return total * total / (n * sum_sq)
