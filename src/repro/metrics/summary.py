"""Result records produced by the experiment runner.

Everything is a plain dataclass with ``to_dict``/``from_dict`` so results
round-trip through the JSONL campaign store and the analysis layer never
touches simulator objects.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class FlowStats:
    """Per-flow (per iperf3 stream) outcome."""

    flow_id: int
    sender_node: str
    cca: str
    throughput_bps: float
    bytes_received: int
    segments_sent: int
    retransmits: int
    rto_count: int
    fast_recoveries: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FlowStats":
        return cls(**d)


@dataclass
class SenderStats:
    """Aggregate over one sender node's flows (the paper's S_1 / S_2)."""

    node: str
    cca: str
    throughput_bps: float
    retransmits: int
    flows: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SenderStats":
        return cls(**d)


@dataclass
class ExperimentResult:
    """One configuration x one repetition."""

    config: Dict[str, Any]
    senders: List[SenderStats]
    flows: List[FlowStats]
    jain_index: float
    link_utilization: float
    total_retransmits: int
    total_throughput_bps: float
    bottleneck_drops: int
    duration_s: float
    engine: str
    events_processed: int = 0
    wallclock_s: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def sender_throughputs(self) -> List[float]:
        return [s.throughput_bps for s in self.senders]

    def throughput_of(self, cca: str) -> float:
        """Total throughput of all sender nodes running ``cca``."""
        return sum(s.throughput_bps for s in self.senders if s.cca == cca)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "config": self.config,
            "senders": [s.to_dict() for s in self.senders],
            "flows": [f.to_dict() for f in self.flows],
            "jain_index": self.jain_index,
            "link_utilization": self.link_utilization,
            "total_retransmits": self.total_retransmits,
            "total_throughput_bps": self.total_throughput_bps,
            "bottleneck_drops": self.bottleneck_drops,
            "duration_s": self.duration_s,
            "engine": self.engine,
            "events_processed": self.events_processed,
            "wallclock_s": self.wallclock_s,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            config=d["config"],
            senders=[SenderStats.from_dict(s) for s in d["senders"]],
            flows=[FlowStats.from_dict(f) for f in d["flows"]],
            jain_index=d["jain_index"],
            link_utilization=d["link_utilization"],
            total_retransmits=d["total_retransmits"],
            total_throughput_bps=d["total_throughput_bps"],
            bottleneck_drops=d["bottleneck_drops"],
            duration_s=d["duration_s"],
            engine=d["engine"],
            events_processed=d.get("events_processed", 0),
            wallclock_s=d.get("wallclock_s", 0.0),
            extra=d.get("extra", {}),
        )
