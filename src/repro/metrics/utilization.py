"""Overall link utilization (paper Equation 3).

``phi = sum(T_i) / beta_tau`` — total achieved throughput over the
bottleneck capacity.  1.0 means the bottleneck was saturated.
"""

from __future__ import annotations

from typing import Sequence


def link_utilization(throughputs_bps: Sequence[float], bottleneck_bps: float) -> float:
    """Normalized total throughput (may slightly exceed 1.0 only by rounding)."""
    if bottleneck_bps <= 0:
        raise ValueError(f"bottleneck capacity must be positive, got {bottleneck_bps}")
    total = float(sum(throughputs_bps))
    if total < 0:
        raise ValueError("throughputs must be non-negative")
    return total / bottleneck_bps
