"""Metrics: fairness, utilization, throughput time series, result records."""

from repro.metrics.fairness import jain_index
from repro.metrics.queue_monitor import QueueMonitor, QueueTrace
from repro.metrics.summary import ExperimentResult, FlowStats, SenderStats
from repro.metrics.timeseries import ThroughputSampler
from repro.metrics.utilization import link_utilization

__all__ = [
    "jain_index",
    "link_utilization",
    "ThroughputSampler",
    "QueueMonitor",
    "QueueTrace",
    "FlowStats",
    "SenderStats",
    "ExperimentResult",
]
