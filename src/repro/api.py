"""The stable top-level API.

One import surface for programmatic users, pinned to the scenario IR
(docs/SCENARIO.md) rather than engine internals::

    from repro.api import Scenario, run, sweep, validate

    scenario = Scenario.from_dict(json.load(open("scenario.json")))
    result = run(scenario, engine="fluid")
    report = validate(scenario, engines=("packet", "fluid"))

Everything here is covered by the deprecation policy: names in
``__all__`` keep working across releases, while engine-specific
knobs reached through other modules may move behind the IR (with a
``DeprecationWarning`` first — see ``ExperimentConfig``'s superseded
constructor arguments).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Optional, Sequence, Union

from repro.metrics.summary import ExperimentResult
from repro.scenario.compile import compile_scenario, run_scenario
from repro.scenario.ir import (
    AqmSpec,
    FlowSpec,
    SamplingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
)
from repro.scenario.validate import (
    ValidationReport,
    render_validation_report,
    validate_scenario,
)

PathLike = Union[str, Path]


def run(
    scenario: Scenario,
    engine: str = "packet",
    *,
    telemetry: Optional[Any] = None,
) -> ExperimentResult:
    """Compile ``scenario`` for ``engine`` and execute it."""
    return run_scenario(scenario, engine, telemetry=telemetry)


def sweep(
    scenarios: Sequence[Scenario],
    engine: str = "packet",
    *,
    seeds: Optional[Sequence[int]] = None,
    store: Optional[PathLike] = None,
    jobs: int = 1,
    resume: bool = True,
    cache: Optional[Any] = None,
) -> List[ExperimentResult]:
    """Run a batch of scenarios (optionally x seeds) through the campaign
    driver — parallel workers, resume-from-store, content-addressed cache.

    ``seeds`` replicates every scenario once per seed (overriding its own
    ``seed`` field); ``store`` appends results to a
    :class:`~repro.experiments.storage.ResultStore` path and enables
    resume; ``cache`` is a :class:`~repro.experiments.cache.ResultCache`.
    Results come back in completion order.
    """
    import dataclasses

    from repro.experiments.campaign import run_campaign
    from repro.experiments.storage import ResultStore

    expanded: List[Scenario] = []
    for scenario in scenarios:
        if seeds is None:
            expanded.append(scenario)
        else:
            expanded.extend(
                dataclasses.replace(scenario, seed=seed) for seed in seeds
            )
    configs = [compile_scenario(s, engine) for s in expanded]
    result_store = ResultStore(store) if store is not None else None
    outcome = run_campaign(
        configs, store=result_store, jobs=jobs, resume=resume, cache=cache
    )
    if outcome.failures:
        first = outcome.failures[0]
        raise RuntimeError(
            f"{len(outcome.failures)} of {len(configs)} scenario runs failed "
            f"(first: {first.label}: {first.error})"
        )
    return list(outcome)


def validate(
    scenario: Scenario,
    engines: Sequence[str] = ("packet", "fluid"),
    **kwargs: Any,
) -> ValidationReport:
    """Cross-validate one scenario across engines (see
    :func:`repro.scenario.validate.validate_scenario`)."""
    return validate_scenario(scenario, engines, **kwargs)


def load_store(path: PathLike) -> List[ExperimentResult]:
    """Load every result from a ``.jsonl`` result store."""
    from repro.experiments.storage import ResultStore

    return ResultStore(path).load()


__all__ = [
    "Scenario",
    "ScenarioError",
    "TopologySpec",
    "FlowSpec",
    "AqmSpec",
    "SamplingSpec",
    "ExperimentResult",
    "ValidationReport",
    "render_validation_report",
    "run",
    "sweep",
    "validate",
    "load_store",
]
