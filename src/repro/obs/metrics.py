"""Counter/gauge/histogram metrics registry.

The registry is the aggregation point of the telemetry subsystem: hot
objects (simulator, links, qdiscs, senders) are *pulled* from at snapshot
time via callback-backed instruments, so attaching telemetry adds zero
per-packet work to the datapath.  Push-style instruments (``inc`` /
``observe``) exist for the few places that have no pre-existing counter,
e.g. the cwnd sampler's histograms.

Disabled registries hand out a shared :data:`NULL_INSTRUMENT` whose
mutators are no-ops and register nothing, so instrumented code can call
``registry.counter(...).inc()`` unconditionally: with telemetry off the
whole chain is a couple of attribute lookups and never touches shared
state (important for the multiprocess campaign workers).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

#: Default histogram buckets: powers of two, a good fit for cwnd-in-segments
#: and queue-backlog-in-packets style distributions.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(float(2 ** i) for i in range(15))


def _render_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonic count.  Either push (``inc``) or pull (``fn`` callback)."""

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self._value = 0
        self._fn = fn

    def inc(self, amount: int = 1) -> None:
        """Add to the counter (push-mode instruments only)."""
        if self._fn is not None:
            raise RuntimeError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def key(self) -> str:
        """Rendered identity: ``name`` or ``name{label="v",...}``."""
        return self.name + _render_labels(self.labels)


class Gauge:
    """Point-in-time value.  Either push (``set``) or pull (``fn``)."""

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Replace the gauge's value (push-mode instruments only)."""
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def key(self) -> str:
        """Rendered identity: ``name`` or ``name{label="v",...}``."""
        return self.name + _render_labels(self.labels)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be a sorted non-empty sequence, got {buckets}")
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self.buckets = tuple(float(b) for b in buckets)
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready per-bucket (non-cumulative) counts plus sum/count."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def key(self) -> str:
        """Rendered identity: ``name`` or ``name{label="v",...}``."""
        return self.name + _render_labels(self.labels)


class _NullInstrument:
    """Accepts every instrument mutator as a no-op; holds no state at all."""

    __slots__ = ()

    kind = "null"
    name = ""
    help = ""
    labels = None
    value = 0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def key(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: The shared instrument handed out by disabled registries.
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Create-and-collect registry for one run.

    ``enabled=False`` makes every factory return :data:`NULL_INSTRUMENT`
    and registers nothing: the disabled registry has no per-run state and
    a :meth:`snapshot` of it is empty.
    """

    __slots__ = ("enabled", "_instruments")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, Any] = {}

    # -- factories ---------------------------------------------------------------

    def counter(
        self,
        name: str,
        help: str = "",
        *,
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        """Create (or fetch) a counter; NULL_INSTRUMENT when disabled."""
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._register(Counter(name, help, labels=labels, fn=fn))

    def gauge(
        self,
        name: str,
        help: str = "",
        *,
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Create (or fetch) a gauge; NULL_INSTRUMENT when disabled."""
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._register(Gauge(name, help, labels=labels, fn=fn))

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        """Create (or fetch) a histogram; NULL_INSTRUMENT when disabled."""
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._register(Histogram(name, help, buckets=buckets, labels=labels))

    def _register(self, instrument):
        key = instrument.key()
        existing = self._instruments.get(key)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise ValueError(
                    f"instrument {key!r} already registered as {existing.kind}"
                )
            return existing
        self._instruments[key] = instrument
        return instrument

    # -- collection --------------------------------------------------------------

    def get(self, key: str):
        """Instrument by rendered key (``name`` or ``name{label="v"}``)."""
        return self._instruments.get(key)

    @property
    def instruments(self) -> List[Any]:
        return list(self._instruments.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of every instrument, resolving pull callbacks."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for key, inst in self._instruments.items():
            if inst.kind == "counter":
                counters[key] = inst.value
            elif inst.kind == "gauge":
                gauges[key] = inst.value
            else:
                histograms[key] = inst.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Shared always-disabled registry, for call sites that want a default.
NULL_REGISTRY = MetricsRegistry(enabled=False)
