"""Hierarchical wall-clock spans for the campaign/run/phase timeline.

A *span* is one timed region of the pipeline — a whole campaign, one
worker attempt, one run, or one run phase (``setup`` / ``warmup`` /
``transfer`` / ``collect`` / ``store``).  Spans carry a process-unique
id, an optional parent id, a category, and free-form string labels, and
are emitted as ``span`` records into the same ``repro-runlog/1`` JSONL
stream as everything else; :mod:`repro.obs.chrome_trace` converts them
into a Perfetto-loadable Chrome Trace Format timeline.

Design mirrors the metrics registry's NULL pattern: a disabled tracer is
the shared :data:`NULL_SPAN_TRACER`, whose :meth:`~SpanTracer.span` /
:meth:`~SpanTracer.start` hand out the no-op :data:`NULL_SPAN` — code
can be written unconditionally (``with spans.span("setup"): ...``) and
pays a couple of attribute lookups per *phase*, never per packet, when
tracing is off.

Timebase: span *start* times are POSIX epoch seconds (``time.time``) so
spans from different processes (campaign parent, pool workers) land on
one shared timeline; *durations* are measured with ``perf_counter`` for
resolution.  Ids are ``"<pid-hex>.<n>"`` so concurrent workers can never
collide.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

#: Span categories used by the stack (free-form; these are the conventions).
CAT_CAMPAIGN = "campaign"
CAT_WORKER = "worker"
CAT_RUN = "run"
CAT_PHASE = "phase"


class Span:
    """One open (then closed) timed region.  Usable as a context manager."""

    __slots__ = (
        "tracer", "span_id", "parent_id", "name", "cat", "labels",
        "t_start", "_t0", "dur_s", "closed", "lane",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        span_id: str,
        parent_id: Optional[str],
        name: str,
        cat: str,
        labels: Optional[Dict[str, Any]],
        lane: Optional[int] = None,
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.labels = dict(labels) if labels else {}
        self.lane = lane if lane is not None else tracer.lane
        self.t_start = tracer._wall_clock()
        self._t0 = tracer._clock()
        self.dur_s: Optional[float] = None
        self.closed = False

    def annotate(self, **labels: Any) -> "Span":
        """Merge extra labels into the span (before or after close is fine,
        but labels added after close are not in the emitted record)."""
        self.labels.update(labels)
        return self

    def close(self) -> None:
        """End the span and emit its record.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self.dur_s = self.tracer._clock() - self._t0
        self.tracer._emit(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.labels.setdefault("status", "error")
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.dur_s:.6f}s" if self.closed else "open"
        return f"<Span {self.name!r} cat={self.cat} id={self.span_id} {state}>"


class _NullSpan:
    """Accepts the whole :class:`Span` surface as a no-op."""

    __slots__ = ()

    span_id = ""
    parent_id = None
    name = ""
    cat = ""
    labels: Dict[str, Any] = {}
    t_start = 0.0
    dur_s = 0.0
    closed = True

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: The shared span handed out by disabled tracers.
NULL_SPAN = _NullSpan()


class SpanTracer:
    """Create spans and emit them as run-log ``span`` records.

    ``writer`` is a :class:`~repro.obs.runlog.RunLogWriter` (or anything
    with a compatible ``write(record_type, **fields)``); with no writer
    the closed spans accumulate on :attr:`finished` instead, which is
    what the unit tests and in-memory consumers use.

    Parenting is implicit through a stack of open spans: :meth:`start`
    uses the innermost open span as parent and pushes itself;
    :meth:`Span.close` pops it.  Concurrent regions (campaign worker
    attempts observed from the parent process) bypass the stack with
    ``detached=True`` and an explicit ``parent``.
    """

    enabled = True

    def __init__(self, writer=None, *, lane: Optional[int] = None,
                 clock=time.perf_counter, wall_clock=time.time):
        self._writer = writer
        self._clock = clock
        self._wall_clock = wall_clock
        self.lane = lane
        self.pid = os.getpid()
        self._next = 0
        self._stack: List[Span] = []
        #: Closed spans retained when there is no writer to stream to.
        self.finished: List[Dict[str, Any]] = []
        self.emitted = 0

    # -- creation -----------------------------------------------------------------

    def _new_id(self) -> str:
        self._next += 1
        return f"{self.pid:x}.{self._next}"

    def start(
        self,
        name: str,
        cat: str = CAT_PHASE,
        *,
        parent: Optional[Span] = None,
        detached: bool = False,
        labels: Optional[Dict[str, Any]] = None,
        lane: Optional[int] = None,
    ) -> Span:
        """Open a span.  Stack-parented unless ``detached`` (concurrent
        regions pass ``detached=True`` with an explicit ``parent`` and,
        typically, a worker ``lane``)."""
        parent_id = None
        if parent is not None:
            parent_id = parent.span_id
        elif self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(self, self._new_id(), parent_id, name, cat, labels, lane)
        if not detached:
            self._stack.append(span)
        return span

    def span(self, name: str, cat: str = CAT_PHASE, **labels: Any) -> Span:
        """``with tracer.span("setup"): ...`` convenience over :meth:`start`."""
        return self.start(name, cat, labels=labels or None)

    def instant(self, name: str, cat: str = CAT_PHASE, **labels: Any) -> None:
        """Emit a zero-duration marker span (retry markers and the like)."""
        span = self.start(name, cat, detached=True, labels=labels or None)
        span.dur_s = 0.0
        span.closed = True
        self._emit(span)

    # -- emission -----------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """Innermost open (stacked) span, or None."""
        return self._stack[-1] if self._stack else None

    @property
    def open_spans(self) -> int:
        """Number of stacked spans not yet closed."""
        return len(self._stack)

    def _emit(self, span: Span) -> None:
        if span in self._stack:
            # Pop through abandoned children so a forgotten inner close
            # cannot wedge the stack (their records were never emitted).
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        fields = dict(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            cat=span.cat,
            t_start=span.t_start,
            dur_s=span.dur_s,
            pid=self.pid,
            labels=span.labels,
        )
        if span.lane is not None:
            fields["lane"] = span.lane
        self.emitted += 1
        if self._writer is not None:
            self._writer.write("span", **fields)
        else:
            self.finished.append({"record": "span", **fields})

    def close_open(self, **labels: Any) -> int:
        """Close every still-open stacked span, innermost first.

        Used on the failure path so an aborted run still emits a complete
        span tree; ``labels`` (e.g. ``status="error"``) are merged into
        each.  Returns the number of spans closed.
        """
        closed = 0
        while self._stack:
            span = self._stack[-1]
            span.annotate(**labels)
            span.close()  # pops via _emit
            closed += 1
        return closed


class NullSpanTracer:
    """Disabled tracer: every factory returns :data:`NULL_SPAN`."""

    enabled = False
    lane = None
    pid = 0
    emitted = 0
    finished: List[Dict[str, Any]] = []

    __slots__ = ()

    def start(self, name, cat=CAT_PHASE, *, parent=None, detached=False,
              labels=None, lane=None):
        """Accept the full :meth:`SpanTracer.start` signature; no-op."""
        return NULL_SPAN

    def span(self, name, cat=CAT_PHASE, **labels):
        """Return the shared no-op span (usable as a context manager)."""
        return NULL_SPAN

    def instant(self, name, cat=CAT_PHASE, **labels):
        """Discard the instant marker."""
        pass

    @property
    def current(self):
        return None

    @property
    def open_spans(self) -> int:
        return 0

    def close_open(self, **labels) -> int:
        """Nothing is ever open; returns 0."""
        return 0


#: The shared disabled tracer (the spans analogue of ``NULL_REGISTRY``).
NULL_SPAN_TRACER = NullSpanTracer()
