"""Engine-agnostic fairness-dynamics telemetry.

The paper's headline quantities — Jain's index, link utilization φ, and
the short-term dynamics that "have strong impacts on long-term fairness"
— used to be observable only as end-of-run scalars (and, as time series,
only on the packet DES).  This module records them *over time* on every
engine through one shared recorder:

- :class:`FairnessProbe` is the pure-Python core: feed it per-flow
  rate samples on a fixed simulated-time cadence and it accumulates the
  per-sender Jain series, the per-flow Jain series, the φ (utilization)
  series, and the bottleneck queue series, then derives convergence
  time, fairness-oscillation counts, and loss-synchronization instants
  via the series helpers in :mod:`repro.analysis.convergence`.
- :func:`instrument_packet_fairness` drives a probe from the DES via a
  :class:`~repro.metrics.timeseries.ThroughputSampler` ``on_sample``
  hook (timer events only — outcomes are bit-identical with it on/off).
- :func:`attach_fluid_fairness` / :func:`attach_batched_fairness`
  install a passive per-step sampling hook on the scalar and batched
  fluid integrators.  Both compute the per-flow rate deltas with the
  same elementwise numpy expression over bit-identical state and hand
  plain Python floats to the probe, so the scalar and batched Jain/φ
  series agree **bit-for-bit** (enforced by
  ``tests/fluid/test_batched_vs_scalar.py``).

Sampling is opt-in via ``ExperimentConfig.fairness_interval_s``; the
probe only ever *reads* engine state (no RNG draws, no mutation), so
enabling it never perturbs outcomes on any engine.

Downstream, the recorded series land in ``result.extra["fairness"]``,
stream into the run log as ``fairness`` records, surface as pull gauges
in the metrics registry, and export as Perfetto counter tracks — see
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.convergence import (
    series_convergence_time_s,
    series_oscillation_count,
    series_sync_loss_times,
)
from repro.metrics.fairness import jain_index

#: Default sampling cadence (simulated seconds) for CLI ``--fairness``.
DEFAULT_FAIRNESS_INTERVAL_S = 1.0


class FairnessProbe:
    """Accumulates fairness-dynamics series from per-flow rate samples.

    The probe is deliberately engine-blind: every engine adapter reduces
    its state to ``(t_s, per-flow bits/sec, queue packets)`` and calls
    :meth:`sample`; all derived math happens here in pure Python, so two
    engines feeding bit-identical samples produce bit-identical series.
    """

    def __init__(
        self,
        *,
        capacity_bps: float,
        node_of: Sequence[int],
        interval_s: float,
        engine: str = "",
    ):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.capacity_bps = float(capacity_bps)
        self.node_of = [int(n) for n in node_of]
        if not self.node_of:
            raise ValueError("need at least one flow")
        self.n_nodes = max(self.node_of) + 1
        self.interval_s = float(interval_s)
        self.engine = engine
        self.t_s: List[float] = []
        self.jain: List[float] = []
        self.flow_jain: List[float] = []
        self.phi: List[float] = []
        self.queue_pkts: List[float] = []
        #: Per-node aggregate rate series (``sender_bps[node][sample]``).
        self.sender_bps: List[List[float]] = [[] for _ in range(self.n_nodes)]

    def sample(self, t_s: float, flow_bps: Sequence[float], queue_pkts: float = 0.0) -> None:
        """Record one sample: per-flow rates (bits/sec) at sim time ``t_s``."""
        if len(flow_bps) != len(self.node_of):
            raise ValueError(
                f"expected {len(self.node_of)} flow rates, got {len(flow_bps)}"
            )
        rates = [float(v) for v in flow_bps]
        per_node = [0.0] * self.n_nodes
        for node, rate in zip(self.node_of, rates):
            per_node[node] += rate
        self.t_s.append(float(t_s))
        self.jain.append(jain_index(per_node))
        self.flow_jain.append(jain_index(rates))
        self.phi.append(sum(rates) / self.capacity_bps)
        self.queue_pkts.append(float(queue_pkts))
        for node, rate in enumerate(per_node):
            self.sender_bps[node].append(rate)

    # -- derived dynamics ---------------------------------------------------------

    def convergence_time_s(self) -> Optional[float]:
        """When the per-sender Jain series converges (None if never)."""
        return series_convergence_time_s(self.t_s, self.jain)

    def oscillations(self) -> int:
        """Downward fairness-threshold crossings after convergence."""
        return series_oscillation_count(self.jain)

    def sync_loss_times_s(self) -> List[float]:
        """Loss-synchronization instants: sharp one-sample drops in φ."""
        return series_sync_loss_times(self.t_s, self.phi)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready series + derived dynamics (``result.extra['fairness']``)."""
        return {
            "engine": self.engine,
            "interval_s": self.interval_s,
            "samples": len(self.t_s),
            "t_s": list(self.t_s),
            "jain": list(self.jain),
            "flow_jain": list(self.flow_jain),
            "phi": list(self.phi),
            "queue_pkts": list(self.queue_pkts),
            "sender_bps": [list(s) for s in self.sender_bps],
            "convergence_time_s": self.convergence_time_s(),
            "oscillations": self.oscillations(),
            "sync_loss_t_s": self.sync_loss_times_s(),
        }


# --- run-log / registry integration -------------------------------------------


def fairness_records(fairness: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Yield one run-log ``fairness`` record dict per recorded sample."""
    t_s = fairness.get("t_s") or []
    jain = fairness.get("jain") or []
    flow_jain = fairness.get("flow_jain") or []
    phi = fairness.get("phi") or []
    queue = fairness.get("queue_pkts") or []
    sender = fairness.get("sender_bps") or []
    for i, t in enumerate(t_s):
        yield {
            "t_sim_s": t,
            "jain": jain[i],
            "flow_jain": flow_jain[i],
            "phi": phi[i],
            "queue_pkts": queue[i],
            "sender_bps": [s[i] for s in sender],
        }


def fairness_summary(fairness: Dict[str, Any]) -> Dict[str, Any]:
    """Compact dynamics digest folded into the run-log ``summary`` record."""
    return {
        "samples": fairness.get("samples", 0),
        "interval_s": fairness.get("interval_s"),
        "convergence_time_s": fairness.get("convergence_time_s"),
        "oscillations": fairness.get("oscillations", 0),
        "sync_losses": len(fairness.get("sync_loss_t_s") or []),
    }


def register_fairness_gauges(registry, fairness: Dict[str, Any]) -> None:
    """Expose a fairness dict as pull gauges (Prometheus-exportable).

    Gauges read the *latest* sample at snapshot time, so a registry
    snapshotted mid-run (or at finish) reports the live values.
    Idempotent: re-registering the same keys returns the existing gauges.
    """

    def _last(key: str, default: float) -> Callable[[], float]:
        def read() -> float:
            series = fairness.get(key) or []
            return float(series[-1]) if series else default

        return read

    registry.gauge(
        "fairness_jain", "Per-sender Jain index, latest sample", fn=_last("jain", 1.0)
    )
    registry.gauge(
        "fairness_flow_jain", "Per-flow Jain index, latest sample",
        fn=_last("flow_jain", 1.0),
    )
    registry.gauge(
        "fairness_phi", "Link utilization phi, latest sample", fn=_last("phi", 0.0)
    )
    registry.gauge(
        "fairness_queue_pkts", "Bottleneck backlog (packets), latest sample",
        fn=_last("queue_pkts", 0.0),
    )
    registry.gauge(
        "fairness_convergence_time_s",
        "Jain convergence time in simulated seconds (-1 = not yet converged)",
        fn=lambda: (
            -1.0
            if fairness.get("convergence_time_s") is None
            else float(fairness["convergence_time_s"])
        ),
    )
    registry.gauge(
        "fairness_oscillations", "Fairness oscillations (threshold re-crossings)",
        fn=lambda: float(fairness.get("oscillations", 0)),
    )
    registry.gauge(
        "fairness_sync_losses", "Loss-synchronization instants detected",
        fn=lambda: float(len(fairness.get("sync_loss_t_s") or [])),
    )
    registry.counter(
        "fairness_samples_total", "Fairness probe samples recorded",
        fn=lambda: len(fairness.get("t_s") or []),
    )


# --- packet (DES) adapter ------------------------------------------------------


class PacketFairnessSampler:
    """DES driver: a :class:`ThroughputSampler` feeding a fairness probe.

    Reuses the sampler's byte-counter deltas (the same machinery behind
    ``extra["series_bps"]``) through its ``on_sample`` hook, so the only
    engine footprint is the sampler's timer events — which, like every
    telemetry event, change ``events_processed`` and nothing else.
    """

    def __init__(self, sim, probe: FairnessProbe, interval_ns: int,
                 queue_fn: Callable[[], float]):
        from repro.metrics.timeseries import ThroughputSampler

        self.probe = probe
        self._queue_fn = queue_fn
        self._names: List[str] = []
        self._sampler = ThroughputSampler(sim, interval_ns)
        self._sampler.on_sample = self._on_sample

    def track(self, name: str, counter: Callable[[], int]) -> None:
        """Register one flow's byte counter (in flow order)."""
        self._names.append(name)
        self._sampler.track(name, counter)

    def start(self) -> None:
        """Begin sampling on the simulator clock."""
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling, flushing the final partial interval."""
        self._sampler.stop()

    def _on_sample(self, now_ns: int, rates: Dict[str, float]) -> None:
        self.probe.sample(
            now_ns / 1e9,
            [rates[name] for name in self._names],
            float(self._queue_fn()),
        )


def instrument_packet_fairness(
    sim,
    qdisc,
    capacity_bps: float,
    flows: Sequence[Tuple[int, int, Callable[[], int]]],
    interval_s: Optional[float],
) -> Optional[PacketFairnessSampler]:
    """Wire fairness sampling into a built packet experiment.

    ``flows`` is ``(flow_id, node_index, bytes_received_fn)`` in flow
    order.  Returns None when ``interval_s`` is falsy — the disabled path
    constructs nothing and schedules nothing (bench-guarded by the
    ``datapath_fairness_disabled`` workload).
    """
    if not interval_s:
        return None
    from repro.units import seconds

    probe = FairnessProbe(
        capacity_bps=capacity_bps,
        node_of=[node for _, node, _ in flows],
        interval_s=float(interval_s),
        engine="packet",
    )
    sampler = PacketFairnessSampler(
        sim, probe, seconds(interval_s), lambda: qdisc.packets_queued
    )
    for flow_id, _, counter in flows:
        sampler.track(f"flow{flow_id}", counter)
    sampler.start()
    return sampler


# --- fluid adapters ------------------------------------------------------------


def fluid_sample_stride(interval_s: float, dt: float) -> int:
    """Integration steps per fairness sample (>= 1) for a fluid engine."""
    return max(1, int(round(float(interval_s) / dt)))


def attach_fluid_fairness(sim, geom, config) -> FairnessProbe:
    """Install a per-step sampling hook on a scalar :class:`FluidSimulation`.

    The hook reads ``delivered_total`` deltas and the AQM backlog — never
    writes, never draws randomness — so integration outcomes are
    unchanged.  The per-flow rate expression
    ``delta * ((8 * mss) / span)`` is elementwise over the same arrays
    the batched backend reproduces bit-for-bit, which is what makes the
    two engines' fairness series exactly equal.
    """
    probe = FairnessProbe(
        capacity_bps=geom.capacity_bps,
        node_of=geom.node_of.tolist(),
        interval_s=float(config.fairness_interval_s),
        engine=config.engine,
    )
    state = {"delivered": sim.delivered_total.copy(), "t": sim.now}
    bits_per_pkt = 8.0 * config.mss_bytes

    def hook(s) -> None:
        span = s.now - state["t"]
        delta = s.delivered_total - state["delivered"]
        probe.sample(
            s.now,
            (delta * (bits_per_pkt / span)).tolist(),
            float(s.aqm.backlog.sum()),
        )
        state["delivered"] = s.delivered_total.copy()
        state["t"] = s.now

    sim.set_sample_hook(
        hook, fluid_sample_stride(config.fairness_interval_s, sim.dt)
    )
    return probe


def attach_batched_fairness(sim) -> List[FairnessProbe]:
    """Install the vectorized sampling hook on a :class:`BatchedFluidSimulation`.

    One probe per config in the shard.  The hook computes the whole
    ``(n_configs, n_flows)`` delivery-delta matrix once per sample, then
    slices each config's real lanes — the same contiguous row views whose
    sums the batched backend already guarantees bit-identical to the
    scalar oracle — so per-config fairness series match the scalar
    engine's exactly (``pad=False`` shards).
    """
    probes: List[FairnessProbe] = []
    for c, config in enumerate(sim.configs):
        probes.append(
            FairnessProbe(
                capacity_bps=sim.geoms[c].capacity_bps,
                node_of=sim.geoms[c].node_of.tolist(),
                interval_s=float(config.fairness_interval_s),
                engine=config.engine,
            )
        )
    state = {"delivered": sim.delivered_total.copy(), "t": sim.now}
    bits_per_pkt = [8.0 * c.mss_bytes for c in sim.configs]

    def hook(s) -> None:
        span = s.now - state["t"]
        delta = s.delivered_total - state["delivered"]
        backlog = s.aqm.backlog
        for c, probe in enumerate(probes):
            n = s.widths[c]
            probe.sample(
                s.now,
                (delta[c, :n] * (bits_per_pkt[c] / span)).tolist(),
                float(backlog[c, :n].sum()),
            )
        state["delivered"] = s.delivered_total.copy()
        state["t"] = s.now

    sim.set_sample_hook(
        hook, fluid_sample_stride(sim.configs[0].fairness_interval_s, sim.dt)
    )
    return probes
