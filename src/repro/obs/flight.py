"""Flight recorder: a bounded ring-buffer tracer.

Long campaign runs cannot afford the unbounded in-memory
:class:`repro.sim.trace.Tracer` (a 200-second 25G cell generates tens of
millions of events).  The :class:`FlightRecorder` keeps only the last
``capacity`` events — like an aircraft flight recorder, it answers "what
happened just before the failure" — while still counting every event by
kind, and can dump its window as JSONL for post-mortem analysis.

It implements the same ``record(kind, time_ns, **fields)`` protocol as
:class:`~repro.sim.trace.Tracer` / :class:`~repro.sim.trace.NullTracer`,
so any tracer-accepting hook can take one.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Deque, Dict, IO, List, Optional, Tuple, Union

TraceEvent = Tuple[str, int, Dict[str, Any]]


class FlightRecorder:
    """Bounded tracer keeping the most recent ``capacity`` events.

    Per-kind indexes are kept as sequence-number deques and pruned lazily,
    so :meth:`of_kind` costs O(matches) amortized regardless of how many
    events have flowed through the ring.
    """

    __slots__ = ("capacity", "counts", "_ring", "_seq", "_by_kind")

    enabled = True

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counts: Counter = Counter()
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._seq = 0  # total events ever recorded
        self._by_kind: Dict[str, Deque[int]] = {}

    # -- recording ----------------------------------------------------------------

    def record(self, kind: str, time_ns: int, **fields: Any) -> None:
        """Append one event, evicting the oldest once the ring is full."""
        seq = self._seq
        self._ring[seq % self.capacity] = (kind, time_ns, fields)
        self._seq = seq + 1
        self.counts[kind] += 1
        index = self._by_kind.get(kind)
        if index is None:
            index = self._by_kind[kind] = deque()
        index.append(seq)

    # -- introspection ------------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including those already evicted."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (oldest-first overwrite)."""
        return max(0, self._seq - self.capacity)

    def __len__(self) -> int:
        return min(self._seq, self.capacity)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained window, oldest to newest."""
        seq, cap = self._seq, self.capacity
        if seq <= cap:
            return [ev for ev in self._ring[:seq]]
        head = seq % cap
        return self._ring[head:] + self._ring[:head]  # type: ignore[operator]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Retained events of one kind, in time order."""
        index = self._by_kind.get(kind)
        if not index:
            return []
        first_live = self._seq - self.capacity
        # Prune sequence numbers whose slots have been overwritten.
        while index and index[0] < first_live:
            index.popleft()
        ring, cap = self._ring, self.capacity
        return [ring[s % cap] for s in index]  # type: ignore[misc]

    def clear(self) -> None:
        """Forget everything (capacity unchanged)."""
        self._ring = [None] * self.capacity
        self._seq = 0
        self.counts.clear()
        self._by_kind.clear()

    # -- export -------------------------------------------------------------------

    def dump_jsonl(self, target: Union[str, IO[str]], *, last: Optional[int] = None) -> int:
        """Write the retained window (optionally only the ``last`` N events)
        as JSONL, one ``{"kind", "time_ns", ...fields}`` object per line in
        time order.  Returns the number of events written."""
        events = self.events
        if last is not None:
            if last < 0:
                raise ValueError(f"last must be >= 0, got {last}")
            events = events[-last:] if last else []
        lines = [
            json.dumps({"kind": kind, "time_ns": time_ns, **fields}, sort_keys=True)
            for kind, time_ns, fields in events
        ]
        payload = "\n".join(lines) + ("\n" if lines else "")
        if hasattr(target, "write"):
            target.write(payload)  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
                fh.write(payload)
        return len(lines)
