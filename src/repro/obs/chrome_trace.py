"""Chrome Trace Format export: span records -> a Perfetto-loadable timeline.

``build_chrome_trace`` stitches the ``span`` records of one or more
``repro-runlog/1`` files — a campaign's ``campaign.jsonl`` plus every
per-run log — into one Chrome Trace Format (JSON object variant) dict:

- every span becomes a complete event (``"ph": "X"``) with microsecond
  ``ts``/``dur`` on a shared timeline (``ts`` is relative to the
  earliest span so Perfetto does not render decades of empty epoch);
- lanes ("threads") are assigned one per campaign worker: spans that
  carry an explicit ``lane`` (the hardened executor's worker slots) get
  ``worker <n>`` lanes, all other spans get one lane per originating
  process — which is exactly one lane per pool worker, since
  ``mp.Pool`` workers are long-lived;
- a run log's ``profile`` record is rendered as an ``engine`` lane:
  one slice per event kind, laid out end to end inside the run's window,
  so the per-kind self-time breakdown is visible right under the run's
  phase spans;
- a run log's ``fairness`` records become counter tracks
  (``"ph": "C"``): Jain index, link utilization φ, and bottleneck queue
  plotted over the run's wall window (simulated time mapped onto it), so
  fairness dynamics render directly above the span timeline.

Load the resulting file in https://ui.perfetto.dev (or
``chrome://tracing``) via "Open trace file".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.runlog import read_run_log
from repro.obs.spans import CAT_CAMPAIGN

PathLike = Union[str, Path]

#: Synthetic pid every event is parented under (one "process" per trace —
#: lanes are the interesting axis and live at the thread level).
TRACE_PID = 1


def _lane_key(span: Dict[str, Any]) -> Tuple[str, Any]:
    lane = span.get("lane")
    if lane is not None:
        return ("worker", lane)
    return ("pid", span.get("pid", 0))


def _lane_name(key: Tuple[str, Any], hint: Optional[str] = None) -> str:
    kind, value = key
    if kind == "worker":
        return f"worker {value}"
    tag = f"pid={value:x}" if isinstance(value, int) else str(value)
    if kind == "profile":
        return f"engine {tag}"
    if hint == "campaign":
        return "campaign"
    return f"runs {tag}"


def collect_spans(paths: Iterable[PathLike]) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Read ``span`` and ``profile`` records from the given run logs.

    Profile records are annotated with the source file's run label (from
    its manifest) and the wall window of its transfer span when present,
    so the exporter can place the engine lane correctly.
    """
    spans: List[Dict[str, Any]] = []
    profiles: List[Dict[str, Any]] = []
    for path in paths:
        records = read_run_log(path)
        label = None
        for r in records:
            if r.get("record") == "manifest":
                label = r.get("label")
                break
        file_spans = [r for r in records if r.get("record") == "span"]
        spans.extend(file_spans)
        for r in records:
            if r.get("record") == "profile":
                prof = dict(r)
                prof["_label"] = label
                prof["_pid"] = next(
                    (s.get("pid", 0) for s in file_spans), 0
                )
                # Anchor the engine lane to the run's sim window: the
                # warmup+transfer spans cover the event loop's wall time.
                loop_spans = [
                    s for s in file_spans
                    if s.get("name") in ("transfer", "warmup", "run")
                ]
                if loop_spans:
                    prof["_t_anchor"] = min(s["t_start"] for s in loop_spans)
                profiles.append(prof)
    return spans, profiles


def collect_fairness(paths: Iterable[PathLike]) -> List[Dict[str, Any]]:
    """Read ``fairness`` records from the given run logs, grouped per file.

    Each block carries the run label, the pid of the file's spans (so the
    counters sit next to the run's lanes), the wall anchor of the run's
    event-loop window when spans are present, and the sample records.
    """
    blocks: List[Dict[str, Any]] = []
    for path in paths:
        records = read_run_log(path)
        samples = [r for r in records if r.get("record") == "fairness"]
        if not samples:
            continue
        label = next(
            (r.get("label") for r in records if r.get("record") == "manifest"),
            None,
        )
        file_spans = [r for r in records if r.get("record") == "span"]
        block: Dict[str, Any] = {
            "_label": label,
            "_pid": next((s.get("pid", 0) for s in file_spans), 0),
            "samples": samples,
        }
        loop_spans = [
            s for s in file_spans if s.get("name") in ("transfer", "warmup", "run")
        ]
        if loop_spans:
            block["_t_anchor"] = min(s["t_start"] for s in loop_spans)
        blocks.append(block)
    return blocks


def spans_to_events(
    spans: List[Dict[str, Any]],
    profiles: Optional[List[Dict[str, Any]]] = None,
    fairness: Optional[List[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Convert span/profile/fairness records into Chrome trace events."""
    events: List[Dict[str, Any]] = []
    if not spans and not profiles and not fairness:
        return events
    t0 = min(s["t_start"] for s in spans) if spans else 0.0

    # A pid lane is the "campaign" lane if the campaign root span lives in
    # it (span records are emitted child-first, so decide up front).
    campaign_keys = {
        _lane_key(s) for s in spans if s.get("cat") == CAT_CAMPAIGN
    }
    lanes: Dict[Tuple[str, Any], int] = {}

    def tid_for(key: Tuple[str, Any], hint: Optional[str] = None) -> int:
        tid = lanes.get(key)
        if tid is None:
            tid = lanes[key] = len(lanes) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": TRACE_PID, "tid": tid,
                "args": {"name": _lane_name(key, hint)},
            })
            events.append({
                "ph": "M", "name": "thread_sort_index", "pid": TRACE_PID,
                "tid": tid, "args": {"sort_index": tid},
            })
        return tid

    events.append({
        "ph": "M", "name": "process_name", "pid": TRACE_PID,
        "args": {"name": "repro"},
    })

    for span in spans:
        key = _lane_key(span)
        tid = tid_for(key, "campaign" if key in campaign_keys else None)
        args: Dict[str, Any] = {"span_id": span.get("span_id")}
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        args.update(span.get("labels") or {})
        dur_s = float(span.get("dur_s") or 0.0)
        event = {
            "name": span.get("name", "?"),
            "cat": span.get("cat", "span"),
            "ph": "X" if dur_s > 0 else "i",
            "ts": (span["t_start"] - t0) * 1e6,
            "pid": TRACE_PID,
            "tid": tid,
            "args": args,
        }
        if dur_s > 0:
            event["dur"] = dur_s * 1e6
        else:
            event["s"] = "t"  # instant-event scope: thread
        events.append(event)

    for prof in profiles or ():
        tid = tid_for(("profile", prof.get("_pid", 0)))
        cursor = (prof.get("_t_anchor", t0) - t0) * 1e6
        kinds = sorted(
            (prof.get("kinds") or {}).items(),
            key=lambda kv: kv[1].get("self_s", 0.0),
            reverse=True,
        )
        for kind, row in kinds:
            self_us = float(row.get("self_s", 0.0)) * 1e6
            if self_us <= 0:
                continue
            events.append({
                "name": kind,
                "cat": "engine-phase",
                "ph": "X",
                "ts": cursor,
                "dur": self_us,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {
                    "events": row.get("events", 0),
                    "run": prof.get("_label"),
                    "note": "aggregate self-time slice, not a real interval",
                },
            })
            cursor += self_us

    # Counter tracks: one per (metric, run).  Simulated seconds are mapped
    # onto the run's wall window starting at its event-loop anchor — the
    # same convention the engine lane uses — so the fairness trajectory
    # lines up under the run's phase spans.
    for block in fairness or ():
        base_us = (block.get("_t_anchor", t0) - t0) * 1e6
        label = block.get("_label") or "run"
        for sample in block["samples"]:
            ts = base_us + float(sample.get("t_sim_s", 0.0)) * 1e6
            for metric in ("jain", "phi", "queue_pkts"):
                value = sample.get(metric)
                if not isinstance(value, (int, float)):
                    continue
                events.append({
                    "name": f"{metric} {label}",
                    "cat": "fairness",
                    "ph": "C",
                    "ts": ts,
                    "pid": TRACE_PID,
                    "args": {metric: value},
                })
    return events


def build_chrome_trace(paths: Iterable[PathLike]) -> Dict[str, Any]:
    """Full Chrome Trace Format document for the given run-log files."""
    paths = list(paths)
    spans, profiles = collect_spans(paths)
    fairness = collect_fairness(paths)
    return {
        "traceEvents": spans_to_events(spans, profiles, fairness),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-runlog/1",
            "sources": [str(p) for p in paths],
            "spans": len(spans),
            "profiles": len(profiles),
            "fairness_samples": sum(len(b["samples"]) for b in fairness),
        },
    }


def write_chrome_trace(paths: Iterable[PathLike], out: PathLike) -> Dict[str, Any]:
    """Build and write the trace JSON; returns the document."""
    paths = list(paths)
    doc = build_chrome_trace(paths)
    Path(out).write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    return doc


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema sanity of a Chrome Trace document (used by tests and CI)."""
    errors: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "C"):
            errors.append(f"event {i}: unsupported ph {ph!r}")
            continue
        if "pid" not in ev:
            errors.append(f"event {i}: missing pid")
        if ph == "C":
            if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
                errors.append(f"event {i}: ts must be a non-negative number")
            if not isinstance(ev.get("name"), str):
                errors.append(f"event {i}: name must be a string")
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                errors.append(f"event {i}: counter args must map names to numbers")
            continue
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name",
                                      "thread_sort_index"):
                errors.append(f"event {i}: unknown metadata {ev.get('name')!r}")
            continue
        if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
            errors.append(f"event {i}: ts must be a non-negative number")
        if ph == "X" and (not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0):
            errors.append(f"event {i}: complete event needs a non-negative dur")
        if not isinstance(ev.get("name"), str):
            errors.append(f"event {i}: name must be a string")
    return errors
