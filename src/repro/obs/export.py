"""Prometheus text-format export.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` (or a run log's
``metrics`` record) in the Prometheus exposition format (text/plain
version 0.0.4): ``# HELP`` / ``# TYPE`` headers, cumulative histogram
buckets with ``le`` labels, and a trailing newline — parseable by any
Prometheus scraper or ``promtool check metrics``.

Exposition-format rules enforced here (the spots scrapers are strict
about):

- ``# HELP`` text escapes backslash and newline (``\\`` / ``\\n``);
  label *values* additionally escape double quotes.
- Each family gets exactly one ``# HELP`` / ``# TYPE`` header even when
  several registries contribute samples to the same metric name
  (:func:`registries_to_prometheus`); conflicting types for one family
  are an error rather than silently emitting an invalid page.
- Duplicate series (same name *and* label set from different registries)
  keep the first occurrence — a scrape page must not repeat a series.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List

from repro.obs.metrics import MetricsRegistry, _render_labels

#: Prefix applied to every exported metric family.
METRIC_PREFIX = "repro_"


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` string per the text-format spec (``\\``, ``\\n``).

    Unlike label values, double quotes are *not* escaped in help text.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    """Left-to-right inverse of ``_escape_label`` (``\\\\``, ``\\"``, ``\\n``).

    A naive ``.replace`` chain corrupts values like ``back\\\\slash"``:
    unescaping must consume each escape sequence exactly once, in order.
    """
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _merge_labels(base: Dict[str, str], extra: Dict[str, str]) -> Dict[str, str]:
    merged = dict(base)
    merged.update(extra)
    return merged


def _render_histogram(name: str, labels: Dict[str, str], hist: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    buckets = list(hist.get("buckets", []))
    counts = list(hist.get("counts", []))
    for bound, count in zip(buckets, counts):
        cumulative += count
        lines.append(
            f"{name}_bucket{_render_labels(_merge_labels(labels, {'le': _format_value(float(bound))}))}"
            f" {cumulative}"
        )
    # The +Inf bucket includes the overflow slot (and any surplus counts).
    cumulative += sum(counts[len(buckets):])
    lines.append(
        f"{name}_bucket{_render_labels(_merge_labels(labels, {'le': '+Inf'}))} {cumulative}"
    )
    lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(hist.get('sum', 0.0))}")
    lines.append(f"{name}_count{_render_labels(labels)} {cumulative}")
    return lines


def _split_key(key: str) -> tuple:
    """Split a rendered instrument key back into (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    labels: Dict[str, str] = {}
    for part in _split_label_parts(rest):
        k, _, v = part.partition("=")
        if len(v) >= 2 and v[0] == '"' and v[-1] == '"':
            v = v[1:-1]
        labels[k] = _unescape_label(v)
    return name, labels


def _split_label_parts(rendered: str) -> List[str]:
    """Split ``k="v",k2="v2"`` on the commas *between* label pairs.

    Tracks escape state explicitly: looking one character back (the old
    approach) misreads a closing quote preceded by an escaped backslash
    (``x="a\\\\"``) and then swallows every following comma.
    """
    parts: List[str] = []
    in_quote = False
    escaped = False
    current = ""
    for ch in rendered:
        if in_quote:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_quote = False
            current += ch
        elif ch == '"':
            in_quote = True
            current += ch
        elif ch == ",":
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    return parts


def snapshot_to_prometheus(snapshot: Dict[str, Any], *, prefix: str = METRIC_PREFIX) -> str:
    """Render a registry snapshot (or run-log ``metrics`` record) as
    Prometheus text format."""
    lines: List[str] = []
    typed = [
        ("counter", snapshot.get("counters", {})),
        ("gauge", snapshot.get("gauges", {})),
    ]
    seen_families = set()
    for kind, section in typed:
        for key in sorted(section):
            name, labels = _split_key(key)
            family = prefix + name
            if family not in seen_families:
                seen_families.add(family)
                lines.append(f"# TYPE {family} {kind}")
            lines.append(f"{family}{_render_labels(labels)} {_format_value(section[key])}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = _split_key(key)
        family = prefix + name
        if family not in seen_families:
            seen_families.add(family)
            lines.append(f"# TYPE {family} histogram")
        lines.extend(_render_histogram(family, labels, snapshot["histograms"][key]))
    return "\n".join(lines) + "\n" if lines else ""


def to_prometheus(registry: MetricsRegistry, *, prefix: str = METRIC_PREFIX) -> str:
    """Render a live registry as Prometheus text format (with ``# HELP``)."""
    return registries_to_prometheus([registry], prefix=prefix)


def registries_to_prometheus(
    registries: Iterable[MetricsRegistry], *, prefix: str = METRIC_PREFIX
) -> str:
    """Render several live registries as one valid exposition page.

    Families shared across registries (e.g. every campaign worker
    registering ``sim_events_processed_total``) get exactly one
    ``# HELP``/``# TYPE`` header — the first non-empty help string wins.
    A family registered with different instrument kinds raises
    ``ValueError``; duplicate series keep their first occurrence.
    """
    families: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for registry in registries:
        for inst in registry.instruments:
            family = prefix + inst.name
            fam = families.get(family)
            if fam is None:
                fam = families[family] = {
                    "kind": inst.kind, "help": inst.help, "rows": {},
                }
                order.append(family)
            elif fam["kind"] != inst.kind:
                raise ValueError(
                    f"metric family {family!r} registered as both "
                    f"{fam['kind']} and {inst.kind}"
                )
            elif not fam["help"] and inst.help:
                fam["help"] = inst.help
            labels_key = _render_labels(inst.labels)
            if labels_key in fam["rows"]:
                continue  # duplicate series: first registry wins
            fam["rows"][labels_key] = inst
    lines: List[str] = []
    for family in sorted(order):
        fam = families[family]
        if fam["help"]:
            lines.append(f"# HELP {family} {_escape_help(fam['help'])}")
        lines.append(f"# TYPE {family} {fam['kind']}")
        for labels_key in sorted(fam["rows"]):
            inst = fam["rows"][labels_key]
            if fam["kind"] == "histogram":
                lines.extend(
                    _render_histogram(family, inst.labels or {}, inst.snapshot())
                )
            else:
                lines.append(f"{family}{labels_key} {_format_value(inst.value)}")
    return "\n".join(lines) + "\n" if lines else ""
