"""Prometheus text-format export.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` (or a run log's
``metrics`` record) in the Prometheus exposition format (text/plain
version 0.0.4): ``# HELP`` / ``# TYPE`` headers, cumulative histogram
buckets with ``le`` labels, and a trailing newline — parseable by any
Prometheus scraper or ``promtool check metrics``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.obs.metrics import MetricsRegistry, _render_labels

#: Prefix applied to every exported metric family.
METRIC_PREFIX = "repro_"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _merge_labels(base: Dict[str, str], extra: Dict[str, str]) -> Dict[str, str]:
    merged = dict(base)
    merged.update(extra)
    return merged


def _render_histogram(name: str, labels: Dict[str, str], hist: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    buckets = list(hist.get("buckets", []))
    counts = list(hist.get("counts", []))
    for bound, count in zip(buckets, counts):
        cumulative += count
        lines.append(
            f"{name}_bucket{_render_labels(_merge_labels(labels, {'le': _format_value(float(bound))}))}"
            f" {cumulative}"
        )
    # The +Inf bucket includes the overflow slot (and any surplus counts).
    cumulative += sum(counts[len(buckets):])
    lines.append(
        f"{name}_bucket{_render_labels(_merge_labels(labels, {'le': '+Inf'}))} {cumulative}"
    )
    lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(hist.get('sum', 0.0))}")
    lines.append(f"{name}_count{_render_labels(labels)} {cumulative}")
    return lines


def _split_key(key: str) -> tuple:
    """Split a rendered instrument key back into (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    labels: Dict[str, str] = {}
    for part in _split_label_parts(rest):
        k, _, v = part.partition("=")
        labels[k] = v.strip('"').replace('\\"', '"').replace("\\\\", "\\")
    return name, labels


def _split_label_parts(rendered: str) -> List[str]:
    parts: List[str] = []
    depth_quote = False
    current = ""
    i = 0
    while i < len(rendered):
        ch = rendered[i]
        if ch == '"' and (i == 0 or rendered[i - 1] != "\\"):
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if current:
        parts.append(current)
    return parts


def snapshot_to_prometheus(snapshot: Dict[str, Any], *, prefix: str = METRIC_PREFIX) -> str:
    """Render a registry snapshot (or run-log ``metrics`` record) as
    Prometheus text format."""
    lines: List[str] = []
    typed = [
        ("counter", snapshot.get("counters", {})),
        ("gauge", snapshot.get("gauges", {})),
    ]
    seen_families = set()
    for kind, section in typed:
        for key in sorted(section):
            name, labels = _split_key(key)
            family = prefix + name
            if family not in seen_families:
                seen_families.add(family)
                lines.append(f"# TYPE {family} {kind}")
            lines.append(f"{family}{_render_labels(labels)} {_format_value(section[key])}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = _split_key(key)
        family = prefix + name
        if family not in seen_families:
            seen_families.add(family)
            lines.append(f"# TYPE {family} histogram")
        lines.extend(_render_histogram(family, labels, snapshot["histograms"][key]))
    return "\n".join(lines) + "\n" if lines else ""


def to_prometheus(registry: MetricsRegistry, *, prefix: str = METRIC_PREFIX) -> str:
    """Render a live registry as Prometheus text format."""
    return snapshot_to_prometheus(registry.snapshot(), prefix=prefix)
