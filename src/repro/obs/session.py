"""Per-run telemetry session: options, lifecycle, and file layout.

A :class:`TelemetrySession` owns one run's registry, flight recorder, and
run log.  The experiment runner drives it:

- :meth:`TelemetrySession.start` writes the manifest record;
- :meth:`instrument` wires the built topology/flows into the registry and
  attaches the flight recorder to the drop/retransmit trace hooks;
- :meth:`finish` writes the final metrics snapshot + ``ok`` summary (and
  folds a compact snapshot into ``result.extra["obs"]``);
- :meth:`record_failure` writes an ``error`` summary with the traceback
  and dumps the flight-recorder window next to the run log.

:class:`TelemetryOptions` is a plain picklable dataclass so campaign
workers can carry it across process boundaries.
"""

from __future__ import annotations

import time
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import instrument_experiment
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import EventLoopProfiler, register_profiler_gauges
from repro.obs.runlog import RunLogWriter
from repro.obs.spans import NULL_SPAN_TRACER, SpanTracer

#: Default location for run logs, manifests, and trace dumps.
DEFAULT_TELEMETRY_DIR = "telemetry"
#: Default flight-recorder window.
DEFAULT_TRACE_CAPACITY = 65536
#: Default cwnd/sRTT sampling cadence (simulated time).
DEFAULT_SAMPLE_INTERVAL_S = 0.1


def config_hash(config: Dict[str, Any]) -> str:
    """Short stable hash of a config dict (same scheme as the bench harness)."""
    from repro.bench.harness import config_hash as _hash

    return _hash(config)


def peak_rss_kb() -> int:
    """Process high-water RSS in KiB (0 where unavailable)."""
    from repro.bench.harness import peak_rss_kb as _rss

    return _rss()


@dataclass
class TelemetryOptions:
    """User-facing telemetry knobs (CLI ``--telemetry`` & friends)."""

    dir: str = DEFAULT_TELEMETRY_DIR
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    #: Always dump the flight-recorder window at the end of the run (the
    #: dump on failure happens regardless).
    trace_dump: bool = False
    #: cwnd/sRTT sampling cadence in simulated seconds (None/0 disables).
    sample_interval_s: Optional[float] = DEFAULT_SAMPLE_INTERVAL_S
    #: Emit hierarchical ``span`` records (run + phase timeline; CLI
    #: ``--trace``).  See docs/TRACING.md.
    spans: bool = False
    #: Attach the event-loop self-profiler and write a ``profile`` record
    #: (CLI ``--profile``).  See docs/TRACING.md.
    profile: bool = False
    #: Profiler sampling stride: 1 times every event, N>1 every N-th.
    profile_stride: int = 1

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what campaign workers unpickle)."""
        return {
            "dir": self.dir,
            "trace_capacity": self.trace_capacity,
            "trace_dump": self.trace_dump,
            "sample_interval_s": self.sample_interval_s,
            "spans": self.spans,
            "profile": self.profile,
            "profile_stride": self.profile_stride,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TelemetryOptions":
        return cls(**d)


class TelemetrySession:
    """One run's worth of telemetry state."""

    def __init__(self, config, options: TelemetryOptions):
        self.config = config
        self.options = options
        self.label = config.label()
        self.registry = MetricsRegistry(enabled=True)
        self.recorder = FlightRecorder(capacity=options.trace_capacity)
        self.run_log_path = Path(options.dir) / f"{self.label}.jsonl"
        self.trace_path = Path(options.dir) / f"{self.label}.trace.jsonl"
        self._writer = RunLogWriter(self.run_log_path)
        self._wall_start = time.perf_counter()
        self._sampler = None
        self._events_fn = lambda: 0
        #: Span tracer streaming into the run log (NULL when disabled).
        self.spans = SpanTracer(self._writer) if options.spans else NULL_SPAN_TRACER
        #: Event-loop profiler to attach as ``sim.profiler`` (None = off).
        self.profiler = (
            EventLoopProfiler(stride=options.profile_stride)
            if options.profile
            else None
        )

    @classmethod
    def start(cls, config, options: Optional[TelemetryOptions]) -> Optional["TelemetrySession"]:
        """Create a session and write the manifest; None when disabled."""
        if options is None:
            return None
        session = cls(config, options)
        session._writer.manifest(
            label=session.label,
            config=config.to_dict(),
            config_hash=config_hash(config.to_dict()),
            repro_version=__version__,
            seed=config.seed,
            engine=config.engine,
        )
        return session

    # -- wiring -------------------------------------------------------------------

    def instrument(self, dumbbell, senders) -> None:
        """Attach the registry and flight recorder to a built experiment."""
        interval_ns = None
        if self.options.sample_interval_s:
            interval_ns = int(self.options.sample_interval_s * 1e9)
        self._sampler = instrument_experiment(
            self.registry, dumbbell, senders, cwnd_interval_ns=interval_ns
        )
        self._events_fn = lambda: dumbbell.sim.events_processed
        recorder = self.recorder
        for sender in senders:
            sender.tracer = recorder
        dumbbell.bottleneck_qdisc.tracer = recorder
        dumbbell.bottleneck_link.tracer = recorder
        if self.profiler is not None:
            dumbbell.sim.profiler = self.profiler
            register_profiler_gauges(self.registry, self.profiler)

    def attach_faults(self, schedule) -> None:
        """Wire a :class:`~repro.faults.schedule.FaultSchedule` into the session.

        Writes the compiled timeline as a ``fault_manifest`` record,
        points the schedule's tracer at the flight recorder (fault firings
        land in the post-mortem window), and registers the
        ``faults_injected_total`` counter.  Attached *after* the schedule
        is armed: the tracer is read at fire time, so attaching never
        perturbs engine event ordering.
        """
        self._writer.fault_manifest(schedule.manifest())
        schedule.tracer = self.recorder
        self.registry.counter(
            "faults_injected_total",
            "Fault mutations fired by the schedule",
            fn=lambda: schedule.injected,
        )
        self.registry.gauge(
            "fault_events_compiled",
            "Events in the compiled fault schedule",
            fn=lambda: len(schedule.events),
        )

    # -- lifecycle ----------------------------------------------------------------

    def _wall_s(self) -> float:
        return time.perf_counter() - self._wall_start

    def progress(self, sim_time_s: float) -> None:
        """Write one progress record (scheduled in simulated time by the runner)."""
        wall = self._wall_s()
        events = self._events_fn()
        self._writer.progress(
            sim_time_s=sim_time_s,
            events=events,
            events_per_sec=events / wall if wall > 0 else 0.0,
        )

    def finish(self, result) -> None:
        """Write metrics + ``ok`` summary; annotate ``result.extra['obs']``."""
        wall = self._wall_s()
        events = self._events_fn()
        eps = events / wall if wall > 0 else 0.0
        self.spans.close_open()  # a leaked span must not block the summary
        if self.profiler is not None:
            self._writer.write("profile", **self.profiler.snapshot())
        fairness = result.extra.get("fairness")
        if not isinstance(fairness, dict):
            fairness = None
        summary_extra: Dict[str, Any] = {}
        if fairness is not None:
            from repro.obs.fairness import (
                fairness_records,
                fairness_summary,
                register_fairness_gauges,
            )

            # Gauges first, so the snapshot below already carries the
            # final fairness values alongside everything else.
            register_fairness_gauges(self.registry, fairness)
            for rec in fairness_records(fairness):
                self._writer.write("fairness", **rec)
            summary_extra["fairness"] = fairness_summary(fairness)
        snapshot = self.registry.snapshot()
        self._writer.metrics(snapshot)
        self._writer.summary(
            status="ok",
            wall_s=wall,
            events=events,
            events_per_sec=eps,
            peak_rss_kb=peak_rss_kb(),
            jain_index=result.jain_index,
            link_utilization=result.link_utilization,
            total_retransmits=result.total_retransmits,
            bottleneck_drops=result.bottleneck_drops,
            trace_events=self.recorder.total_recorded,
            trace_dropped=self.recorder.dropped,
            **summary_extra,
        )
        self._writer.close()
        if self.options.trace_dump:
            self.recorder.dump_jsonl(str(self.trace_path))
        result.extra["obs"] = {
            "run_log": str(self.run_log_path),
            "events_per_sec": eps,
            "peak_rss_kb": peak_rss_kb(),
            "trace_events": self.recorder.total_recorded,
        }
        if self.spans.enabled:
            result.extra["obs"]["spans"] = self.spans.emitted
        if self.profiler is not None:
            result.extra["obs"]["profile_coverage"] = self.profiler.coverage
            result.extra["obs"]["sim_wall_skew"] = self.profiler.skew
        if fairness is not None:
            result.extra["obs"]["fairness_samples"] = fairness.get("samples", 0)

    def record_failure(self, exc: BaseException) -> None:
        """Write an ``error`` summary + dump the flight-recorder window."""
        wall = self._wall_s()
        events = self._events_fn()
        dumped = self.recorder.dump_jsonl(str(self.trace_path))
        # Close abandoned spans innermost-first so the failed run still
        # leaves a complete, validating span tree.
        self.spans.close_open(status="error")
        if self.profiler is not None:
            self._writer.write("profile", **self.profiler.snapshot())
        self._writer.metrics(self.registry.snapshot())
        self._writer.summary(
            status="error",
            wall_s=wall,
            events=events,
            events_per_sec=events / wall if wall > 0 else 0.0,
            peak_rss_kb=peak_rss_kb(),
            error=repr(exc),
            traceback=_traceback.format_exc(),
            trace_dump=str(self.trace_path),
            trace_events_dumped=dumped,
        )
        self._writer.close()
