"""Bind registry instruments to the hot objects of a running experiment.

The datapath already counts everything interesting (the simulator counts
events, links count packets and bytes, qdiscs count drops and marks,
senders count segments and retransmissions) — instrumentation here is
*pull-based*: callback-backed counters/gauges read those counters at
snapshot time, adding nothing to the per-packet path.  The only push-mode
instrumentation is :class:`CwndSampler`, which samples each sender's cwnd
and sRTT into histograms on a simulated-time cadence (the same pattern as
:class:`~repro.metrics.queue_monitor.QueueMonitor`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycles avoided at runtime
    from repro.net.link import Link
    from repro.aqm.base import QueueDiscipline
    from repro.sim.engine import Simulator
    from repro.tcp.sender import TcpSender

#: cwnd histogram bounds, in segments (covers 1 .. 64k-segment windows).
CWND_BUCKETS = tuple(float(2 ** i) for i in range(17))
#: sRTT histogram bounds, in milliseconds.
SRTT_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0,
                   150.0, 200.0, 300.0, 500.0, 1000.0)


def instrument_simulator(registry: MetricsRegistry, sim: "Simulator") -> None:
    """Event-loop health: events executed, heap depth, simulated clock."""
    registry.counter("sim_events_processed_total",
                     "Events executed by the simulator", fn=lambda: sim.events_processed)
    registry.gauge("sim_pending_events",
                   "Queued heap entries (incl. tombstones)", fn=lambda: sim.pending)
    registry.gauge("sim_time_seconds",
                   "Simulated clock", fn=lambda: sim.now / 1e9)


def instrument_link(registry: MetricsRegistry, link: "Link", name: str) -> None:
    """Per-link delivery and loss counters."""
    labels = {"link": name}
    registry.counter("link_packets_delivered_total",
                     "Packets delivered at the far end", labels=labels,
                     fn=lambda: link.packets_delivered)
    registry.counter("link_bytes_delivered_total",
                     "Bytes delivered at the far end", labels=labels,
                     fn=lambda: link.bytes_delivered)
    registry.counter("link_packets_lost_total",
                     "Packets dropped by the link's random-loss process", labels=labels,
                     fn=lambda: link.packets_lost)


def instrument_qdisc(registry: MetricsRegistry, qdisc: "QueueDiscipline", name: str) -> None:
    """Queue-discipline counters and backlog gauges."""
    labels = {"queue": name}
    stats = qdisc.stats
    registry.counter("queue_enqueued_total", "Packets accepted", labels=labels,
                     fn=lambda: stats.enqueued)
    registry.counter("queue_dequeued_total", "Packets dequeued", labels=labels,
                     fn=lambda: stats.dequeued)
    registry.counter("queue_dropped_enqueue_total", "Enqueue-time drops", labels=labels,
                     fn=lambda: stats.dropped_enqueue)
    registry.counter("queue_dropped_dequeue_total", "Dequeue-time (AQM) drops", labels=labels,
                     fn=lambda: stats.dropped_dequeue)
    registry.counter("queue_ecn_marked_total", "ECN CE marks", labels=labels,
                     fn=lambda: stats.ecn_marked)
    registry.counter("queue_bytes_dropped_total", "Bytes dropped", labels=labels,
                     fn=lambda: stats.bytes_dropped)
    registry.gauge("queue_backlog_bytes", "Instantaneous backlog", labels=labels,
                   fn=lambda: qdisc.bytes_queued)
    registry.gauge("queue_backlog_packets", "Instantaneous backlog", labels=labels,
                   fn=lambda: qdisc.packets_queued)


def instrument_senders(registry: MetricsRegistry, senders: Sequence["TcpSender"]) -> None:
    """Aggregate TCP counters over all flows (resolved at snapshot time)."""
    senders = list(senders)
    registry.counter("tcp_segments_sent_total", "Data segments transmitted",
                     fn=lambda: sum(s.segments_sent for s in senders))
    registry.counter("tcp_retransmits_total", "Retransmitted segments",
                     fn=lambda: sum(s.retransmits for s in senders))
    registry.counter("tcp_rto_total", "Retransmission timeouts",
                     fn=lambda: sum(s.rto_count for s in senders))
    registry.counter("tcp_fast_recoveries_total", "Fast-recovery episodes",
                     fn=lambda: sum(s.fast_recoveries for s in senders))
    registry.counter("tcp_bytes_sent_total", "Payload bytes transmitted",
                     fn=lambda: sum(s.bytes_sent for s in senders))
    registry.gauge("tcp_flows", "Number of instrumented flows", fn=lambda: len(senders))


class CwndSampler:
    """Periodically sample every sender's cwnd and sRTT into histograms."""

    def __init__(
        self,
        registry: MetricsRegistry,
        sim: "Simulator",
        senders: Sequence["TcpSender"],
        interval_ns: int,
    ):
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.senders = list(senders)
        self.interval_ns = interval_ns
        self.cwnd_hist = registry.histogram(
            "tcp_cwnd_segments", "Sampled congestion windows", buckets=CWND_BUCKETS
        )
        self.srtt_hist = registry.histogram(
            "tcp_srtt_ms", "Sampled smoothed RTTs", buckets=SRTT_BUCKETS_MS
        )
        self.samples = 0
        self._running = False

    def start(self) -> None:
        """Begin sampling (first sample one interval from now)."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self.sim.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        cwnd_observe = self.cwnd_hist.observe
        srtt_observe = self.srtt_hist.observe
        for sender in self.senders:
            cwnd_observe(sender.cca.cwnd)
            srtt = sender.rtt.srtt_ns
            if srtt:  # None until the first RTT sample
                srtt_observe(srtt / 1e6)
        self.samples += 1
        self.sim.schedule(self.interval_ns, self._tick)


def instrument_experiment(
    registry: MetricsRegistry,
    dumbbell,
    senders: Sequence["TcpSender"],
    *,
    cwnd_interval_ns: Optional[int] = None,
) -> Optional[CwndSampler]:
    """Wire a built dumbbell + flow set into the registry.

    Instruments the simulator, the bottleneck link and qdisc, and the TCP
    aggregate; optionally starts a :class:`CwndSampler`.  Returns the
    sampler (or None) so the caller can read ``samples``.
    """
    instrument_simulator(registry, dumbbell.sim)
    instrument_link(registry, dumbbell.bottleneck_link, "bottleneck")
    instrument_qdisc(registry, dumbbell.bottleneck_qdisc, "bottleneck")
    instrument_senders(registry, senders)
    sampler: Optional[CwndSampler] = None
    if cwnd_interval_ns and registry.enabled:
        sampler = CwndSampler(registry, dumbbell.sim, senders, cwnd_interval_ns)
        sampler.start()
    return sampler
