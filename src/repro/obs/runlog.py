"""Structured JSONL run logs and manifests.

A *run log* is one JSONL file per experiment run.  Every line is a record
object with a ``record`` type tag and a ``t_wall`` POSIX timestamp; the
first line is always the ``manifest``.  Record types (schema
``repro-runlog/1``):

- ``manifest`` — identity of the run: label, full config dict, config
  hash, repro version, seed, engine, schema version.
- ``progress`` — periodic liveness: simulated seconds, events processed,
  events/sec so far (optional; campaigns also write these into their own
  ``campaign.jsonl``).
- ``metrics`` — a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
- ``summary`` — terminal record: status (``ok``/``error``), wall seconds,
  events, events/sec, peak RSS, headline outcome metrics, and the
  traceback string on failure.
- ``fault_manifest`` — the compiled fault-injection timeline of the run
  (specs + absolute-time events; see docs/FAULTS.md).
- ``span`` — one closed wall-clock span of the campaign/run/phase
  timeline (id, optional parent id, category, epoch start, duration,
  labels; see docs/TRACING.md).  Emitted at span *close*, so children
  precede their parents in the file.
- ``profile`` — the event-loop self-profiler's per-kind wall-time
  attribution for the run (kinds, loop wall seconds, coverage, sim/wall
  skew; see docs/TRACING.md).
- ``bench`` — one benchmark workload's timing row (the bench harness
  writes run logs too, so ``repro obs summary`` can digest bench runs).
- ``fairness`` — one fairness-dynamics sample (simulated-time stamp,
  per-sender Jain index, per-flow Jain index, link utilization φ,
  bottleneck queue, per-sender rates; see docs/OBSERVABILITY.md).
  Emitted only for runs recorded with ``fairness_interval_s`` set.
- ``campaign_progress`` / ``campaign_retry`` — campaign-level liveness
  and retry accounting (written to ``campaign.jsonl``, not per-run logs).

:func:`validate_run_log` is the hand-rolled schema check used by tests
and the CI telemetry smoke job (no external jsonschema dependency).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

#: Version tag every manifest carries; bump on breaking record changes.
RUN_LOG_SCHEMA = "repro-runlog/1"

#: Required keys per record type (beyond the envelope ``record``/``t_wall``).
REQUIRED_FIELDS: Dict[str, tuple] = {
    "manifest": ("schema", "label", "config", "config_hash", "repro_version", "seed", "engine"),
    "progress": ("sim_time_s", "events", "events_per_sec"),
    "metrics": ("counters", "gauges", "histograms"),
    "summary": ("status", "wall_s", "events", "events_per_sec", "peak_rss_kb"),
    "campaign_progress": ("finished", "total", "failed", "label", "eta_s"),
    "campaign_retry": ("label", "attempt", "delay_s", "error"),
    "fault_manifest": ("specs", "events"),
    "span": ("span_id", "name", "cat", "t_start", "dur_s"),
    "profile": ("kinds", "loop_wall_s", "events"),
    "bench": ("name", "wall_s", "events", "events_per_sec"),
    "fairness": ("t_sim_s", "jain", "phi"),
}

#: Record types allowed in logs that carry no manifest/summary envelope
#: (``campaign.jsonl``); everything else lives in per-run logs.
CAMPAIGN_RECORDS = ("campaign_progress", "campaign_retry", "span")


class RunLogWriter:
    """Append-only JSONL writer with typed-record helpers."""

    def __init__(self, path: PathLike, *, clock=time.time):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")

    def write(self, record_type: str, **fields: Any) -> Dict[str, Any]:
        """Append one record; returns the dict that was written."""
        if self._fh is None:
            raise RuntimeError(f"run log {self.path} is closed")
        record = {"record": record_type, "t_wall": self._clock(), **fields}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        return record

    # -- typed helpers -----------------------------------------------------------

    def manifest(
        self,
        *,
        label: str,
        config: Dict[str, Any],
        config_hash: str,
        repro_version: str,
        seed: int,
        engine: str,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Write the identity record (always the run log's first line)."""
        return self.write(
            "manifest",
            schema=RUN_LOG_SCHEMA,
            label=label,
            config=config,
            config_hash=config_hash,
            repro_version=repro_version,
            seed=seed,
            engine=engine,
            **extra,
        )

    def progress(self, *, sim_time_s: float, events: int, events_per_sec: float, **extra: Any) -> Dict[str, Any]:
        """Write one periodic liveness record."""
        return self.write(
            "progress",
            sim_time_s=sim_time_s,
            events=events,
            events_per_sec=events_per_sec,
            **extra,
        )

    def fault_manifest(self, manifest: Dict[str, Any]) -> Dict[str, Any]:
        """Write the compiled fault timeline (specs + absolute-time events)."""
        return self.write(
            "fault_manifest",
            specs=manifest.get("specs", []),
            events=manifest.get("events", []),
        )

    def metrics(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Write a registry snapshot as one metrics record."""
        return self.write(
            "metrics",
            counters=snapshot.get("counters", {}),
            gauges=snapshot.get("gauges", {}),
            histograms=snapshot.get("histograms", {}),
        )

    def summary(
        self,
        *,
        status: str,
        wall_s: float,
        events: int,
        events_per_sec: float,
        peak_rss_kb: int,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Write the terminal record (``status`` is ``ok`` or ``error``)."""
        return self.write(
            "summary",
            status=status,
            wall_s=wall_s,
            events=events,
            events_per_sec=events_per_sec,
            peak_rss_kb=peak_rss_kb,
            **extra,
        )

    def close(self) -> None:
        """Release the file handle (idempotent)."""
        fh = self._fh
        if fh is not None:
            self._fh = None
            fh.close()

    def __enter__(self) -> "RunLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_run_log(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a run log into its record dicts (raises on corrupt lines)."""
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: corrupt run-log line ({exc})") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: record is not an object")
            records.append(record)
    return records


def validate_run_log(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check parsed records; returns a list of problems (empty = valid)."""
    errors: List[str] = []
    if not records:
        return ["run log is empty"]
    for i, record in enumerate(records, 1):
        kind = record.get("record")
        if kind is None:
            errors.append(f"record {i}: missing 'record' type tag")
            continue
        if kind not in REQUIRED_FIELDS:
            errors.append(f"record {i}: unknown record type {kind!r}")
            continue
        if not isinstance(record.get("t_wall"), (int, float)):
            errors.append(f"record {i} ({kind}): missing/non-numeric 't_wall'")
        missing = [f for f in REQUIRED_FIELDS[kind] if f not in record]
        if missing:
            errors.append(f"record {i} ({kind}): missing fields {missing}")
    first = records[0]
    if first.get("record") != "manifest":
        errors.append("first record must be the manifest")
    elif first.get("schema") != RUN_LOG_SCHEMA:
        errors.append(
            f"manifest schema {first.get('schema')!r} != expected {RUN_LOG_SCHEMA!r}"
        )
    else:
        if not isinstance(first.get("config"), dict):
            errors.append("manifest 'config' must be an object")
    summaries = [r for r in records if r.get("record") == "summary"]
    if not summaries:
        errors.append("no summary record (run did not finish writing)")
    else:
        for s in summaries:
            if s.get("status") not in ("ok", "error"):
                errors.append(f"summary status {s.get('status')!r} not in ok/error")
            if s.get("status") == "error" and "traceback" not in s:
                errors.append("error summary missing 'traceback'")
    errors.extend(validate_spans(records))
    for r in records:
        if r.get("record") == "profile":
            kinds = r.get("kinds")
            if not isinstance(kinds, dict):
                errors.append("profile record: 'kinds' must be an object")
            else:
                for name, row in kinds.items():
                    if not isinstance(row, dict) or not {"self_s", "events"} <= set(row):
                        errors.append(f"profile record: kind {name!r} malformed")
        if r.get("record") == "metrics":
            for section in ("counters", "gauges"):
                sec = r.get(section)
                if not isinstance(sec, dict) or not all(
                    isinstance(v, (int, float)) for v in sec.values()
                ):
                    errors.append(f"metrics record: {section} must map names to numbers")
            hists = r.get("histograms")
            if not isinstance(hists, dict):
                errors.append("metrics record: histograms must be an object")
            else:
                for name, h in hists.items():
                    if not isinstance(h, dict) or not {"buckets", "counts", "sum", "count"} <= set(h):
                        errors.append(f"metrics record: histogram {name!r} malformed")
        if r.get("record") == "fairness":
            for key in ("t_sim_s", "jain", "phi"):
                if not isinstance(r.get(key), (int, float)):
                    errors.append(f"fairness record: {key!r} must be numeric")
            jain = r.get("jain")
            if isinstance(jain, (int, float)) and not 0.0 <= jain <= 1.0 + 1e-9:
                errors.append(f"fairness record: jain {jain!r} outside [0, 1]")
            phi = r.get("phi")
            if isinstance(phi, (int, float)) and phi < 0:
                errors.append(f"fairness record: phi {phi!r} is negative")
            if "sender_bps" in r and not isinstance(r["sender_bps"], list):
                errors.append("fairness record: sender_bps must be a list")
    return errors


def validate_campaign_log(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check a ``campaign.jsonl`` (no manifest/summary envelope).

    Campaign logs carry only the record types in :data:`CAMPAIGN_RECORDS`
    — progress/retry accounting plus the campaign-side span timeline —
    so the per-run envelope rules don't apply, but field presence and
    span-tree integrity still do.
    """
    errors: List[str] = []
    if not records:
        return ["campaign log is empty"]
    for i, record in enumerate(records, 1):
        kind = record.get("record")
        if kind not in CAMPAIGN_RECORDS:
            errors.append(
                f"record {i}: type {kind!r} does not belong in a campaign log"
            )
            continue
        if not isinstance(record.get("t_wall"), (int, float)):
            errors.append(f"record {i} ({kind}): missing/non-numeric 't_wall'")
        missing = [f for f in REQUIRED_FIELDS[kind] if f not in record]
        if missing:
            errors.append(f"record {i} ({kind}): missing fields {missing}")
    errors.extend(validate_spans(records))
    return errors


def validate_spans(records: List[Dict[str, Any]]) -> List[str]:
    """Span-tree integrity over one file's ``span`` records.

    Checks per-span field sanity (numeric non-negative duration, object
    labels, unique ids) and that every ``parent_id`` resolves to another
    span in the same file — per-run logs and ``campaign.jsonl`` are each
    self-contained span trees (the Chrome-trace exporter stitches them by
    process, not by id).
    """
    errors: List[str] = []
    spans = [r for r in records if r.get("record") == "span"]
    ids = set()
    for s in spans:
        sid = s.get("span_id")
        if not isinstance(sid, str) or not sid:
            errors.append(f"span record: bad span_id {sid!r}")
            continue
        if sid in ids:
            errors.append(f"span record: duplicate span_id {sid!r}")
        ids.add(sid)
        dur = s.get("dur_s")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"span {sid}: dur_s must be a non-negative number, got {dur!r}")
        if not isinstance(s.get("t_start"), (int, float)):
            errors.append(f"span {sid}: t_start must be numeric")
        if "labels" in s and not isinstance(s["labels"], dict):
            errors.append(f"span {sid}: labels must be an object")
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in ids:
            errors.append(
                f"span {s.get('span_id')}: parent_id {parent!r} does not resolve"
            )
    return errors
