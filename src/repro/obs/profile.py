"""Event-loop self-profiler: wall-time attribution per event kind.

The simulator dispatches millions of callbacks per run; this profiler
answers *where the wall-clock goes* — link serialization completions,
packet deliveries (which include inline TCP/CCA ACK processing), pacing
and RTO timer fires, telemetry ticks — without touching the disabled hot
path at all: :meth:`~repro.sim.engine.Simulator.run` checks its
``profiler`` attribute once per call and only the profiled twin of the
loop pays any per-event cost.

Two measurement modes:

- ``stride == 1`` (default): a chained ``perf_counter`` timestamp per
  iteration, so per-kind self-times sum to essentially the whole loop
  wall time (heap pops and loop bookkeeping are folded into the event
  they precede).  Overhead is one clock read plus one dict update per
  event (~5 % on the datapath benches).
- ``stride > 1``: only every N-th iteration is timed (window around the
  heap pop + dispatch) and per-kind totals are scaled by the observed
  events/sampled ratio — the low-overhead sampling mode for very long
  runs.

Either way the *simulation outcome is bit-identical* with the profiler
on or off: the profiler changes when the loop looks at the wall clock,
never what it executes or in what order.

Attribution granularity is the dispatched callback: classification maps
``Owner.method`` qualnames to stable kind names (see :data:`KIND_MAP`),
splitting ``Link._deliver`` by the delivered packet's ``is_ack`` flag so
ACK-clocked congestion-control processing shows up as its own kind.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

#: ``Owner.method`` -> event-kind mapping for the known callbacks.  A
#: callback not listed here falls back to its ``Owner.method`` string, so
#: new subsystems are profiled (just not prettily named) automatically.
KIND_MAP: Dict[str, str] = {
    "Link._tx_done": "link_tx",            # serialization done + qdisc dequeue/pump
    "Link._deliver": "packet_deliver",     # propagation arrival + forwarding
    "TcpSender._pacing_fire": "pacing_timer",
    "TcpSender._on_rto": "rto_timer",
    "TcpSender._begin": "flow_start",
    "FaultSchedule._fire": "fault_fire",
    "CwndSampler._tick": "telemetry_tick",
    "ThroughputSampler._tick": "telemetry_tick",
    "QueueMonitor._tick": "telemetry_tick",
    "IperfServer._interval_tick": "telemetry_tick",
}

#: Kind used for ACK-carrying deliveries (inline TCP/CCA ACK processing).
ACK_KIND = "ack_process"


def classify(fn: Any, args: Tuple[Any, ...]) -> str:
    """Event kind for one dispatched callback (uncached; see the memo in
    :class:`EventLoopProfiler` for the hot form)."""
    self_obj = getattr(fn, "__self__", None)
    if self_obj is not None:
        key = f"{type(self_obj).__name__}.{fn.__name__}"
    else:
        key = getattr(fn, "__qualname__", None) or repr(fn)
        key = key.rsplit("<locals>.", 1)[-1]
    kind = KIND_MAP.get(key, key)
    if kind == "packet_deliver" and args and getattr(args[0], "is_ack", False):
        return ACK_KIND
    return kind


class EventLoopProfiler:
    """Accumulates per-kind wall time for one simulator's dispatch loop.

    Attach with ``sim.profiler = profiler`` *before* ``run()``; read
    :meth:`snapshot` afterwards.  One profiler instance can span several
    ``run()`` segments (warmup + transfer) — totals accumulate.
    """

    __slots__ = (
        "stride", "self_time_s", "event_counts", "events", "sampled",
        "loop_wall_s", "sim_time_ns", "runs", "_countdown", "_memo",
    )

    def __init__(self, stride: int = 1):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.self_time_s: Dict[str, float] = {}
        self.event_counts: Dict[str, int] = {}
        self.events = 0          # dispatched events covered by profiled runs
        self.sampled = 0         # events actually timed
        self.loop_wall_s = 0.0   # wall time spent inside profiled run() calls
        self.sim_time_ns = 0     # simulated time advanced by profiled runs
        self.runs = 0
        self._countdown = 1      # iterations until the next timed sample
        # Memo keyed by the underlying function object: bound methods are
        # recreated per schedule() call but share one __func__.
        self._memo: Dict[Any, str] = {}

    # -- called by Simulator._run_profiled ----------------------------------------

    def _observe(self, fn: Any, args: Tuple[Any, ...], dt: float) -> None:
        """Attribute one timed dispatch of ``fn(*args)`` lasting ``dt``."""
        memo_key = getattr(fn, "__func__", fn)
        kind = self._memo.get(memo_key)
        if kind is None:
            kind = classify(fn, args)
            # ACK and data deliveries share one __func__, so the delivery
            # callback is never memoized — only kinds that do not depend
            # on the arguments are.
            if kind not in (ACK_KIND, "packet_deliver"):
                self._memo[memo_key] = kind
        self.sampled += 1
        self.self_time_s[kind] = self.self_time_s.get(kind, 0.0) + dt
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1

    def _account_loop(self, wall_s: float, events: int, sim_ns: int) -> None:
        """Fold one ``run()`` segment's totals in (engine calls this)."""
        self.loop_wall_s += wall_s
        self.events += events
        self.sim_time_ns += sim_ns
        self.runs += 1

    # -- reading ------------------------------------------------------------------

    @property
    def attributed_s(self) -> float:
        """Estimated total per-kind self time (scaled when sampling)."""
        raw = sum(self.self_time_s.values())
        if self.stride == 1 or self.sampled == 0:
            return raw
        return raw * (self.events / self.sampled)

    @property
    def coverage(self) -> float:
        """Fraction of loop wall time explained by per-kind self time."""
        if self.loop_wall_s <= 0:
            return 0.0
        return self.attributed_s / self.loop_wall_s

    @property
    def skew(self) -> float:
        """Simulated seconds advanced per wall second inside the loop
        (>1 = faster than real time)."""
        if self.loop_wall_s <= 0:
            return 0.0
        return (self.sim_time_ns / 1e9) / self.loop_wall_s

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state: the run log's ``profile`` record body."""
        scale = 1.0
        if self.stride > 1 and self.sampled:
            scale = self.events / self.sampled
        kinds = {
            kind: {
                "self_s": self.self_time_s[kind] * scale,
                "events": int(self.event_counts[kind] * scale),
            }
            for kind in self.self_time_s
        }
        return {
            "stride": self.stride,
            "events": self.events,
            "sampled": self.sampled,
            "loop_wall_s": self.loop_wall_s,
            "attributed_s": self.attributed_s,
            "coverage": self.coverage,
            "sim_time_s": self.sim_time_ns / 1e9,
            "skew": self.skew,
            "kinds": kinds,
        }


def render_profile(profile: Dict[str, Any], *, top: int = 0,
                   source: str = "") -> str:
    """Human-readable top-N self-time table for one ``profile`` record."""
    kinds = profile.get("kinds", {})
    loop_wall = float(profile.get("loop_wall_s", 0.0)) or 0.0
    rows = sorted(kinds.items(), key=lambda kv: kv[1].get("self_s", 0.0),
                  reverse=True)
    if top:
        rows = rows[:top]
    lines: List[str] = []
    lines.append(
        f"event loop  : {loop_wall:.3f}s wall, {profile.get('events', 0):,} events"
        + (f", stride {profile.get('stride')}" if profile.get("stride", 1) != 1 else "")
    )
    lines.append(
        f"coverage    : {100.0 * float(profile.get('coverage', 0.0)):.1f}% of loop "
        f"wall attributed; sim/wall skew {float(profile.get('skew', 0.0)):.2f}x"
    )
    lines.append(f"{'kind':<20s} {'self':>9s} {'%':>6s} {'cum%':>6s} "
                 f"{'events':>12s} {'per-event':>10s}")
    cum = 0.0
    for kind, row in rows:
        self_s = float(row.get("self_s", 0.0))
        events = int(row.get("events", 0))
        pct = 100.0 * self_s / loop_wall if loop_wall else 0.0
        cum += pct
        per_ev = self_s / events * 1e6 if events else 0.0
        lines.append(f"{kind:<20s} {self_s:>8.3f}s {pct:>5.1f}% {cum:>5.1f}% "
                     f"{events:>12,} {per_ev:>8.2f}us")
    if source:
        lines.append(f"source      : {source}")
    return "\n".join(lines)


def diff_profiles(a: Dict[str, Any], b: Dict[str, Any]) -> List[Tuple[str, float, float]]:
    """Per-kind ``(kind, self_s_a, self_s_b)`` rows over the union of kinds,
    ordered by the larger side descending."""
    kinds_a = a.get("kinds", {})
    kinds_b = b.get("kinds", {})
    names = set(kinds_a) | set(kinds_b)
    rows = [
        (
            name,
            float(kinds_a.get(name, {}).get("self_s", 0.0)),
            float(kinds_b.get(name, {}).get("self_s", 0.0)),
        )
        for name in names
    ]
    rows.sort(key=lambda r: max(r[1], r[2]), reverse=True)
    return rows


def register_profiler_gauges(registry, profiler: "EventLoopProfiler") -> None:
    """Expose the profiler's health as pull-mode gauges (skew, coverage)."""
    registry.gauge("profile_sim_wall_skew",
                   "Simulated seconds advanced per wall second in the event loop",
                   fn=lambda: profiler.skew)
    registry.gauge("profile_loop_wall_seconds",
                   "Wall time spent inside profiled event-loop segments",
                   fn=lambda: profiler.loop_wall_s)
    registry.gauge("profile_coverage",
                   "Fraction of loop wall time attributed to event kinds",
                   fn=lambda: profiler.coverage)
    registry.gauge("profile_sampled_events",
                   "Events individually timed by the profiler",
                   fn=lambda: profiler.sampled)


__all__ = [
    "ACK_KIND",
    "EventLoopProfiler",
    "KIND_MAP",
    "classify",
    "diff_profiles",
    "render_profile",
    "register_profiler_gauges",
]

# Re-exported for callers that want a monotonic clock consistent with the
# engine's profiled loop.
perf_counter = time.perf_counter
