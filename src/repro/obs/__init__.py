"""repro.obs — telemetry subsystem.

Structured observability for runs and campaigns: a pull-based
counter/gauge/histogram :class:`~repro.obs.metrics.MetricsRegistry`, a
bounded :class:`~repro.obs.flight.FlightRecorder` tracer, JSONL run
logs/manifests (:mod:`repro.obs.runlog`), Prometheus text-format export
(:mod:`repro.obs.export`), and the per-run
:class:`~repro.obs.session.TelemetrySession` lifecycle the experiment
runner drives.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import snapshot_to_prometheus, to_prometheus
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runlog import (
    RUN_LOG_SCHEMA,
    RunLogWriter,
    read_run_log,
    validate_run_log,
)
from repro.obs.session import TelemetryOptions, TelemetrySession

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "FlightRecorder",
    "RunLogWriter",
    "RUN_LOG_SCHEMA",
    "read_run_log",
    "validate_run_log",
    "TelemetryOptions",
    "TelemetrySession",
    "to_prometheus",
    "snapshot_to_prometheus",
]
