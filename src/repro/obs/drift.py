"""Campaign-level fairness drift detection.

``repro bench`` gates *speed* regressions; this module gates the
*science*: it diffs the per-cell Jain / φ (link utilization) / RR
(retransmission) distributions between two result sets — two campaign
stores, a store versus golden fixtures, or a store versus itself — and
flags every cell whose fairness shifted beyond tolerance.

A *cell* is an experiment configuration with the identity-irrelevant
knobs stripped: seed (repetitions of a cell differ only by seed),
engine (cross-engine fairness agreement is exactly what the detector is
for), and the telemetry cadences (sampling is outcome-neutral by
construction).  All repetitions of a cell pool into one distribution per
metric, and the detector compares distribution *means* under per-metric
tolerances — absolute for Jain and φ (both live in [0, 1]-ish ranges),
hybrid absolute/relative for retransmit counts (which span orders of
magnitude across the grid).

Invariant the CI fairness-smoke job pins: a store diffed against itself
reports exactly zero drift — every comparison is ``0.0 > tol`` with the
same floats on both sides, so there is no tolerance tuning that can make
self-comparison flap.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Tuple, Union

PathLike = Union[str, Path]

#: Config keys that do not define a cell's scientific identity.
CELL_IGNORED_KEYS = (
    "seed",
    "engine",
    "sample_interval_s",
    "queue_monitor_interval_s",
    "fairness_interval_s",
)

#: Metrics the detector compares, with their result-dict field names.
DRIFT_METRICS = ("jain", "phi", "rr")


@dataclass(frozen=True)
class DriftTolerance:
    """Per-metric thresholds a cell's mean shift must stay within."""

    #: Max absolute shift in mean Jain index.
    jain: float = 0.05
    #: Max absolute shift in mean link utilization φ.
    phi: float = 0.05
    #: Max relative shift in mean total retransmits...
    rr_rel: float = 0.25
    #: ...unless the absolute shift is also below this floor (guards
    #: near-zero baselines where any change is a huge ratio).
    rr_abs: float = 10.0


@dataclass
class CellDrift:
    """One cell whose fairness distribution moved beyond tolerance."""

    cell: str
    metric: str
    mean_a: float
    mean_b: float
    delta: float
    tolerance: float
    n_a: int
    n_b: int


@dataclass
class DriftReport:
    """Outcome of diffing two result sets cell-by-cell."""

    drifted: List[CellDrift] = field(default_factory=list)
    checked: int = 0
    missing_in_a: List[str] = field(default_factory=list)
    missing_in_b: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no overlapping cell drifted (missing cells warn only)."""
        return not self.drifted


def cell_key(config: Dict[str, Any]) -> str:
    """Canonical cell identity for a config dict (deterministic JSON)."""
    ident = {
        k: v for k, v in config.items() if k not in CELL_IGNORED_KEYS and v is not None
    }
    return json.dumps(ident, sort_keys=True, separators=(",", ":"))


def result_rows(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Yield result dicts from a store (.jsonl), a fixture (.json), or a
    directory of either — the inputs ``repro obs fairness drift`` accepts."""
    p = Path(path)
    if not p.exists():
        raise ValueError(f"no such results path: {p}")
    if p.is_dir():
        found = False
        for child in sorted(p.iterdir()):
            if child.suffix in (".json", ".jsonl") and child.is_file():
                found = True
                yield from result_rows(child)
        if not found:
            raise ValueError(f"no .json/.jsonl result files under {p}")
        return
    if p.suffix == ".jsonl":
        with p.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{p}:{lineno}: corrupt result line ({exc})") from None
                yield row
        return
    with p.open("r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, list):
        for row in doc:
            yield row
    else:
        yield doc


def distributions_from_rows(
    rows: Iterable[Dict[str, Any]], *, source: str = "rows"
) -> Dict[str, Dict[str, List[float]]]:
    """Pool result rows (dicts) into per-cell metric samples.

    The in-memory seam under :func:`cell_distributions`: the cross-engine
    validation harness (:mod:`repro.scenario.validate`) feeds it results
    that never touched disk.  ``source`` only labels error messages.
    """
    cells: Dict[str, Dict[str, List[float]]] = {}
    for row in rows:
        config = row.get("config")
        if not isinstance(config, dict):
            raise ValueError(f"result row without a config dict in {source}")
        dist = cells.setdefault(
            cell_key(config), {m: [] for m in DRIFT_METRICS}
        )
        dist["jain"].append(float(row["jain_index"]))
        dist["phi"].append(float(row["link_utilization"]))
        dist["rr"].append(float(row["total_retransmits"]))
    if not cells:
        raise ValueError(f"no result rows found in {source}")
    return cells


def cell_distributions(path: PathLike) -> Dict[str, Dict[str, List[float]]]:
    """Pool a result set into per-cell metric samples.

    Returns ``{cell_key: {"jain": [...], "phi": [...], "rr": [...]}}``
    with one sample per result row (repetitions pool together).
    """
    return distributions_from_rows(result_rows(path), source=str(path))


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def detect_drift_cells(
    cells_a: Dict[str, Dict[str, List[float]]],
    cells_b: Dict[str, Dict[str, List[float]]],
    *,
    tolerance: DriftTolerance = DriftTolerance(),
) -> DriftReport:
    """Diff two pooled distributions (see :func:`distributions_from_rows`).

    The comparison core under :func:`detect_drift`, exposed so in-memory
    result sets — e.g. per-engine runs of one scenario — can be diffed
    without a store on disk.
    """
    report = DriftReport()
    report.missing_in_b = sorted(set(cells_a) - set(cells_b))
    report.missing_in_a = sorted(set(cells_b) - set(cells_a))
    for key in sorted(set(cells_a) & set(cells_b)):
        report.checked += 1
        dist_a, dist_b = cells_a[key], cells_b[key]
        for metric in DRIFT_METRICS:
            mean_a = _mean(dist_a[metric])
            mean_b = _mean(dist_b[metric])
            delta = abs(mean_b - mean_a)
            if metric == "jain":
                tol = tolerance.jain
            elif metric == "phi":
                tol = tolerance.phi
            else:
                tol = max(tolerance.rr_abs, tolerance.rr_rel * max(abs(mean_a), 1.0))
            if delta > tol:
                report.drifted.append(
                    CellDrift(
                        cell=key,
                        metric=metric,
                        mean_a=mean_a,
                        mean_b=mean_b,
                        delta=delta,
                        tolerance=tol,
                        n_a=len(dist_a[metric]),
                        n_b=len(dist_b[metric]),
                    )
                )
    return report


def detect_drift(
    path_a: PathLike,
    path_b: PathLike,
    *,
    tolerance: DriftTolerance = DriftTolerance(),
) -> DriftReport:
    """Diff two result sets and report every cell drifted beyond tolerance.

    Cells present in only one set are listed as missing (a coverage
    warning, not drift).  Comparing a set against itself always yields a
    clean report with zero drifted cells.
    """
    return detect_drift_cells(
        cell_distributions(path_a), cell_distributions(path_b), tolerance=tolerance
    )


def _cell_label(key: str) -> str:
    """Short human-readable tag for a cell key (the distinguishing knobs)."""
    config = json.loads(key)
    parts = []
    pair = config.get("cca_pair")
    if isinstance(pair, (list, tuple)) and len(pair) == 2:
        parts.append(f"{pair[0]}-vs-{pair[1]}")
    for k in ("aqm", "bottleneck_bw_bps", "buffer_bdp", "flows_per_node"):
        if k in config:
            parts.append(f"{k}={config[k]}")
    return " ".join(parts) if parts else key


def render_drift_report(report: DriftReport, *, verbose: bool = False) -> str:
    """Human-readable drift report for the CLI."""
    lines: List[str] = []
    lines.append(
        f"cells checked: {report.checked}  drifted: {len(report.drifted)}"
        f"  only-in-a: {len(report.missing_in_b)}"
        f"  only-in-b: {len(report.missing_in_a)}"
    )
    for d in report.drifted:
        lines.append(
            f"DRIFT {d.metric:4s} {_cell_label(d.cell)}: "
            f"{d.mean_a:.6g} -> {d.mean_b:.6g} "
            f"(|Δ|={d.delta:.6g} > tol={d.tolerance:.6g}, n={d.n_a}/{d.n_b})"
        )
    if verbose:
        for key in report.missing_in_b:
            lines.append(f"only in a: {_cell_label(key)}")
        for key in report.missing_in_a:
            lines.append(f"only in b: {_cell_label(key)}")
    lines.append("no fairness drift" if report.clean else "fairness drift detected")
    return "\n".join(lines)


def summarize_fairness(path: PathLike) -> List[Dict[str, Any]]:
    """Per-cell fairness summary rows for ``repro obs fairness summary``.

    Pools repetitions per cell and aggregates both the end-of-run scalars
    (Jain/φ/RR means) and — for runs recorded with ``--fairness`` — the
    dynamics carried in ``extra["fairness"]``: mean convergence time
    (over converged runs), how many runs converged, total oscillations,
    and total sync-loss events.
    """
    cells: Dict[str, Dict[str, Any]] = {}
    for row in result_rows(path):
        config = row.get("config")
        if not isinstance(config, dict):
            raise ValueError(f"result row without a config dict in {path}")
        key = cell_key(config)
        agg = cells.setdefault(
            key,
            {
                "cell": _cell_label(key),
                "runs": 0,
                "jain": [],
                "phi": [],
                "rr": [],
                "sampled": 0,
                "converged": 0,
                "convergence_times": [],
                "oscillations": 0,
                "sync_losses": 0,
            },
        )
        agg["runs"] += 1
        agg["jain"].append(float(row["jain_index"]))
        agg["phi"].append(float(row["link_utilization"]))
        agg["rr"].append(float(row["total_retransmits"]))
        fairness = (row.get("extra") or {}).get("fairness")
        if isinstance(fairness, dict):
            agg["sampled"] += 1
            ct = fairness.get("convergence_time_s")
            if ct is not None:
                agg["converged"] += 1
                agg["convergence_times"].append(float(ct))
            agg["oscillations"] += int(fairness.get("oscillations", 0))
            agg["sync_losses"] += len(fairness.get("sync_loss_t_s") or [])
    rows: List[Dict[str, Any]] = []
    for key in sorted(cells):
        agg = cells[key]
        rows.append(
            {
                "cell": agg["cell"],
                "runs": agg["runs"],
                "jain_mean": _mean(agg["jain"]),
                "phi_mean": _mean(agg["phi"]),
                "rr_mean": _mean(agg["rr"]),
                "sampled": agg["sampled"],
                "converged": agg["converged"],
                "convergence_time_s": (
                    _mean(agg["convergence_times"])
                    if agg["convergence_times"]
                    else None
                ),
                "oscillations": agg["oscillations"],
                "sync_losses": agg["sync_losses"],
            }
        )
    return rows


def render_fairness_summary(rows: List[Dict[str, Any]]) -> str:
    """Table view of :func:`summarize_fairness` rows."""
    lines = [
        f"{'runs':>4s} {'jain':>8s} {'phi':>8s} {'rr':>10s} "
        f"{'conv':>9s} {'osc':>4s} {'sync':>4s}  cell"
    ]
    for r in rows:
        conv = (
            f"{r['convergence_time_s']:.2f}s"
            if r["convergence_time_s"] is not None
            else (f"0/{r['sampled']}" if r["sampled"] else "-")
        )
        lines.append(
            f"{r['runs']:>4d} {r['jain_mean']:>8.4f} {r['phi_mean']:>8.4f} "
            f"{r['rr_mean']:>10.1f} {conv:>9s} {r['oscillations']:>4d} "
            f"{r['sync_losses']:>4d}  {r['cell']}"
        )
    lines.append(f"{len(rows)} cells")
    return "\n".join(lines)
