"""`repro obs` — inspect run logs, campaigns, and export metrics.

    repro obs summary  telemetry/<label>.jsonl     # human-readable run digest
    repro obs validate telemetry/<label>.jsonl     # schema gate (CI smoke)
    repro obs prom     telemetry/<label>.jsonl     # Prometheus text format
    repro obs tail     telemetry/                  # latest campaign status
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.export import snapshot_to_prometheus
from repro.obs.runlog import read_run_log, validate_run_log


def _records_by_type(records: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for r in records:
        grouped.setdefault(r.get("record", "?"), []).append(r)
    return grouped


def _fmt_count(value: float) -> str:
    value = float(value)
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:g}"


#: Counter keys surfaced in the summary headline (rendered key -> title).
_HEADLINE_COUNTERS = (
    ("sim_events_processed_total", "events"),
    ('queue_dropped_enqueue_total{queue="bottleneck"}', "drops (enqueue)"),
    ('queue_dropped_dequeue_total{queue="bottleneck"}', "drops (dequeue)"),
    ('queue_ecn_marked_total{queue="bottleneck"}', "ecn marks"),
    ("tcp_segments_sent_total", "segments sent"),
    ("tcp_retransmits_total", "retransmits"),
    ("tcp_rto_total", "RTOs"),
    ("tcp_fast_recoveries_total", "fast recoveries"),
)


def render_summary(records: List[Dict[str, Any]], *, source: str = "") -> str:
    """Human-readable digest of one run log."""
    grouped = _records_by_type(records)
    lines: List[str] = []
    manifest = (grouped.get("manifest") or [{}])[0]
    if manifest:
        lines.append(f"run         : {manifest.get('label', '?')}")
        lines.append(
            f"manifest    : engine={manifest.get('engine', '?')} "
            f"seed={manifest.get('seed', '?')} "
            f"config_hash={manifest.get('config_hash', '?')} "
            f"repro={manifest.get('repro_version', '?')}"
        )
    summary = (grouped.get("summary") or [{}])[-1]
    if summary:
        status = summary.get("status", "?")
        lines.append(
            f"status      : {status}  wall={summary.get('wall_s', 0.0):.2f}s  "
            f"events={_fmt_count(summary.get('events', 0))}  "
            f"rate={_fmt_count(summary.get('events_per_sec', 0.0))} ev/s  "
            f"rss={summary.get('peak_rss_kb', 0)}KiB"
        )
        if status == "error":
            lines.append(f"error       : {summary.get('error', '?')}")
            if summary.get("trace_dump"):
                lines.append(f"trace dump  : {summary['trace_dump']} "
                             f"({summary.get('trace_events_dumped', '?')} events)")
        else:
            lines.append(
                f"outcome     : J={summary.get('jain_index', float('nan')):.4f}  "
                f"phi={summary.get('link_utilization', float('nan')):.4f}  "
                f"retx={summary.get('total_retransmits', '?')}  "
                f"drops={summary.get('bottleneck_drops', '?')}"
            )
    metrics = (grouped.get("metrics") or [{}])[-1]
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters    :")
        shown = set()
        for key, title in _HEADLINE_COUNTERS:
            if key in counters:
                shown.add(key)
                lines.append(f"  {title:<22s} {_fmt_count(counters[key]):>10s}")
        for key in sorted(counters):
            if key not in shown:
                lines.append(f"  {key:<40s} {_fmt_count(counters[key]):>10s}")
    for key, hist in sorted(metrics.get("histograms", {}).items()):
        count = hist.get("count", 0)
        if count:
            mean = hist.get("sum", 0.0) / count
            lines.append(f"  {key:<22s} n={count} mean={mean:.1f}")
    if source:
        lines.append(f"source      : {source}")
    return "\n".join(lines)


def render_campaign_tail(records: List[Dict[str, Any]]) -> str:
    """Latest state of a campaign from its ``campaign_progress`` records."""
    progress = [r for r in records if r.get("record") == "campaign_progress"]
    if not progress:
        return "no campaign progress records"
    last = progress[-1]
    failed = last.get("failed", 0)
    lines = [
        f"campaign    : {last.get('finished', '?')}/{last.get('total', '?')} done"
        + (f", {failed} FAILED" if failed else "")
        + f", ETA {last.get('eta_s', 0.0):.0f}s",
        f"last run    : {last.get('label', '?')} "
        f"({_fmt_count(last.get('events_per_sec', 0.0))} ev/s)",
    ]
    recent = progress[-5:]
    if len(recent) > 1:
        lines.append("recent      :")
        for r in recent[:-1]:
            lines.append(
                f"  [{r.get('finished', '?')}/{r.get('total', '?')}] {r.get('label', '?')}"
            )
    return "\n".join(lines)


def _resolve_logs(path: Path) -> List[Path]:
    if path.is_dir():
        return sorted(
            p for p in path.glob("*.jsonl") if not p.name.endswith(".trace.jsonl")
        )
    return [path]


def cmd_summary(args: argparse.Namespace) -> int:
    """``repro obs summary``: digest of one or every run log in a directory."""
    paths = _resolve_logs(Path(args.log))
    if not paths:
        print(f"no run logs under {args.log}", file=sys.stderr)
        return 1
    blocks = []
    for p in paths:
        if p.name == "campaign.jsonl":
            continue
        blocks.append(render_summary(read_run_log(p), source=str(p)))
    print("\n\n".join(blocks))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """``repro obs validate``: schema-check run logs; exit 1 on problems."""
    paths = _resolve_logs(Path(args.log))
    if not paths:
        print(f"no run logs under {args.log}", file=sys.stderr)
        return 1
    bad = 0
    for p in paths:
        if p.name == "campaign.jsonl":
            continue
        try:
            errors = validate_run_log(read_run_log(p))
        except (OSError, ValueError) as exc:
            errors = [str(exc)]
        if errors:
            bad += 1
            for e in errors:
                print(f"{p}: {e}", file=sys.stderr)
        else:
            print(f"{p}: valid ({sum(1 for _ in open(p, encoding='utf-8'))} records)")
    return 1 if bad else 0


def cmd_prom(args: argparse.Namespace) -> int:
    """``repro obs prom``: export a run log's metrics as Prometheus text.

    Given a directory, exports the most recently modified run log in it.
    """
    path = Path(args.log)
    if path.is_dir():
        logs = [p for p in _resolve_logs(path) if p.name != "campaign.jsonl"]
        if not logs:
            print(f"no run logs under {args.log}", file=sys.stderr)
            return 1
        path = max(logs, key=lambda p: p.stat().st_mtime)
    records = read_run_log(path)
    metrics = [r for r in records if r.get("record") == "metrics"]
    if not metrics:
        print(f"no metrics record in {args.log}", file=sys.stderr)
        return 1
    text = snapshot_to_prometheus(metrics[-1])
    if args.out and args.out != "-":
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {len(text.splitlines())} lines to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    """``repro obs tail``: latest status of a campaign (or run-log dir)."""
    path = Path(args.log)
    campaign = path / "campaign.jsonl" if path.is_dir() else path
    if campaign.exists():
        print(render_campaign_tail(read_run_log(campaign)))
        return 0
    # No campaign log: fall back to one-line-per-run-log status.
    paths = _resolve_logs(path)
    if not paths:
        print(f"nothing to tail under {args.log}", file=sys.stderr)
        return 1
    for p in paths:
        try:
            records = read_run_log(p)
        except ValueError as exc:
            print(f"{p.name}: unreadable ({exc})")
            continue
        summaries = [r for r in records if r.get("record") == "summary"]
        if summaries:
            s = summaries[-1]
            print(f"{p.name}: {s.get('status')} "
                  f"({_fmt_count(s.get('events_per_sec', 0.0))} ev/s)")
        else:
            print(f"{p.name}: running ({len(records)} records)")
    return 0


def add_obs_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``obs`` subcommand tree on the top-level CLI parser."""
    p_obs = sub.add_parser("obs", help="inspect telemetry run logs and export metrics")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_sum = obs_sub.add_parser("summary", help="render a run log (or telemetry dir) digest")
    p_sum.add_argument("log", help="run-log .jsonl file or telemetry directory")
    p_sum.set_defaults(func=cmd_summary)

    p_val = obs_sub.add_parser("validate", help="schema-check run logs; exit 1 on problems")
    p_val.add_argument("log", help="run-log .jsonl file or telemetry directory")
    p_val.set_defaults(func=cmd_validate)

    p_prom = obs_sub.add_parser("prom", help="export a run log's metrics as Prometheus text")
    p_prom.add_argument("log", help="run-log .jsonl file (or telemetry dir: newest log)")
    p_prom.add_argument("--out", default="-", help="output file ('-' = stdout)")
    p_prom.set_defaults(func=cmd_prom)

    p_tail = obs_sub.add_parser("tail", help="latest status of a (live) campaign directory")
    p_tail.add_argument("log", help="telemetry directory or campaign.jsonl")
    p_tail.set_defaults(func=cmd_tail)
