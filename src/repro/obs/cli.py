"""`repro obs` — inspect run logs, campaigns, and export metrics.

    repro obs summary  telemetry/<label>.jsonl     # human-readable run digest
    repro obs validate telemetry/<label>.jsonl     # schema gate (CI smoke)
    repro obs prom     telemetry/<label>.jsonl     # Prometheus text format
    repro obs tail     telemetry/ [--follow]       # latest campaign status
    repro obs trace    telemetry/ --out trace.json # Chrome/Perfetto timeline
    repro obs profile  telemetry/<label>.jsonl     # event-loop self-time table
    repro obs diff     a.jsonl b.jsonl             # phase/kind comparison
    repro obs fairness summary results.jsonl       # per-cell fairness digest
    repro obs fairness drift a.jsonl b.jsonl       # fairness regression gate
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import snapshot_to_prometheus
from repro.obs.profile import diff_profiles, render_profile
from repro.obs.runlog import read_run_log, validate_campaign_log, validate_run_log


def _records_by_type(records: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for r in records:
        grouped.setdefault(r.get("record", "?"), []).append(r)
    return grouped


def _fmt_count(value: float) -> str:
    value = float(value)
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:g}"


#: Counter keys surfaced in the summary headline (rendered key -> title).
_HEADLINE_COUNTERS = (
    ("sim_events_processed_total", "events"),
    ('queue_dropped_enqueue_total{queue="bottleneck"}', "drops (enqueue)"),
    ('queue_dropped_dequeue_total{queue="bottleneck"}', "drops (dequeue)"),
    ('queue_ecn_marked_total{queue="bottleneck"}', "ecn marks"),
    ("tcp_segments_sent_total", "segments sent"),
    ("tcp_retransmits_total", "retransmits"),
    ("tcp_rto_total", "RTOs"),
    ("tcp_fast_recoveries_total", "fast recoveries"),
)


def render_summary(records: List[Dict[str, Any]], *, source: str = "") -> str:
    """Human-readable digest of one run log."""
    grouped = _records_by_type(records)
    lines: List[str] = []
    manifest = (grouped.get("manifest") or [{}])[0]
    if manifest:
        lines.append(f"run         : {manifest.get('label', '?')}")
        lines.append(
            f"manifest    : engine={manifest.get('engine', '?')} "
            f"seed={manifest.get('seed', '?')} "
            f"config_hash={manifest.get('config_hash', '?')} "
            f"repro={manifest.get('repro_version', '?')}"
        )
    summary = (grouped.get("summary") or [{}])[-1]
    if summary:
        status = summary.get("status", "?")
        lines.append(
            f"status      : {status}  wall={summary.get('wall_s', 0.0):.2f}s  "
            f"events={_fmt_count(summary.get('events', 0))}  "
            f"rate={_fmt_count(summary.get('events_per_sec', 0.0))} ev/s  "
            f"rss={summary.get('peak_rss_kb', 0)}KiB"
        )
        if status == "error":
            lines.append(f"error       : {summary.get('error', '?')}")
            if summary.get("trace_dump"):
                lines.append(f"trace dump  : {summary['trace_dump']} "
                             f"({summary.get('trace_events_dumped', '?')} events)")
        elif "jain_index" in summary:
            lines.append(
                f"outcome     : J={summary.get('jain_index', float('nan')):.4f}  "
                f"phi={summary.get('link_utilization', float('nan')):.4f}  "
                f"retx={summary.get('total_retransmits', '?')}  "
                f"drops={summary.get('bottleneck_drops', '?')}"
            )
    metrics = (grouped.get("metrics") or [{}])[-1]
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters    :")
        shown = set()
        for key, title in _HEADLINE_COUNTERS:
            if key in counters:
                shown.add(key)
                lines.append(f"  {title:<22s} {_fmt_count(counters[key]):>10s}")
        for key in sorted(counters):
            if key not in shown:
                lines.append(f"  {key:<40s} {_fmt_count(counters[key]):>10s}")
    for key, hist in sorted(metrics.get("histograms", {}).items()):
        count = hist.get("count", 0)
        if count:
            mean = hist.get("sum", 0.0) / count
            lines.append(f"  {key:<22s} n={count} mean={mean:.1f}")
    benches = grouped.get("bench") or []
    if benches:
        lines.append("bench       :")
        for b in benches:
            lines.append(
                f"  {b.get('name', '?'):<28s} {float(b.get('wall_s', 0.0)):>8.3f}s "
                f"{_fmt_count(b.get('events', 0)):>10s} ev "
                f"{_fmt_count(b.get('events_per_sec', 0.0)):>10s} ev/s"
            )
    spans = grouped.get("span") or []
    if spans:
        phases = _phase_durations(spans)
        top = sorted(phases.items(), key=lambda kv: kv[1], reverse=True)[:6]
        lines.append(
            "spans       : "
            + f"{len(spans)} recorded; "
            + "  ".join(f"{name}={dur:.2f}s" for name, dur in top)
        )
    if source:
        lines.append(f"source      : {source}")
    return "\n".join(lines)


def _phase_durations(spans: List[Dict[str, Any]]) -> Dict[str, float]:
    """Total duration per span name (phases aggregate across repeats)."""
    out: Dict[str, float] = {}
    for s in spans:
        out[s.get("name", "?")] = out.get(s.get("name", "?"), 0.0) + float(
            s.get("dur_s") or 0.0
        )
    return out


def render_campaign_tail(records: List[Dict[str, Any]]) -> str:
    """Latest state of a campaign from its ``campaign_progress`` records."""
    progress = [r for r in records if r.get("record") == "campaign_progress"]
    if not progress:
        return "no campaign progress records"
    last = progress[-1]
    failed = last.get("failed", 0)
    lines = [
        f"campaign    : {last.get('finished', '?')}/{last.get('total', '?')} done"
        + (f", {failed} FAILED" if failed else "")
        + f", ETA {last.get('eta_s', 0.0):.0f}s",
        f"last run    : {last.get('label', '?')} "
        f"({_fmt_count(last.get('events_per_sec', 0.0))} ev/s)",
    ]
    recent = progress[-5:]
    if len(recent) > 1:
        lines.append("recent      :")
        for r in recent[:-1]:
            lines.append(
                f"  [{r.get('finished', '?')}/{r.get('total', '?')}] {r.get('label', '?')}"
            )
    return "\n".join(lines)


def _resolve_logs(path: Path) -> List[Path]:
    if path.is_dir():
        return sorted(
            p for p in path.glob("*.jsonl") if not p.name.endswith(".trace.jsonl")
        )
    return [path]


def cmd_summary(args: argparse.Namespace) -> int:
    """``repro obs summary``: digest of one or every run log in a directory."""
    paths = _resolve_logs(Path(args.log))
    if not paths:
        print(f"no run logs under {args.log}", file=sys.stderr)
        return 1
    blocks = []
    for p in paths:
        if p.name == "campaign.jsonl":
            continue
        blocks.append(render_summary(read_run_log(p), source=str(p)))
    print("\n\n".join(blocks))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """``repro obs validate``: schema-check run logs; exit 1 on problems."""
    paths = _resolve_logs(Path(args.log))
    if not paths:
        print(f"no run logs under {args.log}", file=sys.stderr)
        return 1
    bad = 0
    for p in paths:
        check = validate_campaign_log if p.name == "campaign.jsonl" else validate_run_log
        try:
            errors = check(read_run_log(p))
        except (OSError, ValueError) as exc:
            errors = [str(exc)]
        if errors:
            bad += 1
            for e in errors:
                print(f"{p}: {e}", file=sys.stderr)
        else:
            print(f"{p}: valid ({sum(1 for _ in open(p, encoding='utf-8'))} records)")
    return 1 if bad else 0


def cmd_prom(args: argparse.Namespace) -> int:
    """``repro obs prom``: export a run log's metrics as Prometheus text.

    Given a directory, exports the most recently modified run log in it.
    """
    path = Path(args.log)
    if path.is_dir():
        logs = [p for p in _resolve_logs(path) if p.name != "campaign.jsonl"]
        if not logs:
            print(f"no run logs under {args.log}", file=sys.stderr)
            return 1
        path = max(logs, key=lambda p: p.stat().st_mtime)
    records = read_run_log(path)
    metrics = [r for r in records if r.get("record") == "metrics"]
    if not metrics:
        print(f"no metrics record in {args.log}", file=sys.stderr)
        return 1
    text = snapshot_to_prometheus(metrics[-1])
    if args.out and args.out != "-":
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {len(text.splitlines())} lines to {args.out}")
    else:
        print(text, end="")
    return 0


def _tail_render(path: Path) -> Tuple[int, str]:
    """One tail snapshot: (exit code, rendered text)."""
    campaign = path / "campaign.jsonl" if path.is_dir() else path
    if campaign.exists():
        return 0, render_campaign_tail(read_run_log(campaign))
    # No campaign log: fall back to one-line-per-run-log status.
    paths = _resolve_logs(path)
    if not paths:
        return 1, f"nothing to tail under {path}"
    lines = []
    for p in paths:
        try:
            records = read_run_log(p)
        except ValueError as exc:
            lines.append(f"{p.name}: unreadable ({exc})")
            continue
        summaries = [r for r in records if r.get("record") == "summary"]
        if summaries:
            s = summaries[-1]
            lines.append(f"{p.name}: {s.get('status')} "
                         f"({_fmt_count(s.get('events_per_sec', 0.0))} ev/s)")
        else:
            lines.append(f"{p.name}: running ({len(records)} records)")
    return 0, "\n".join(lines)


def _tail_fingerprint(path: Path) -> Tuple:
    """Cheap change detector for ``--follow`` (sizes, not contents)."""
    campaign = path / "campaign.jsonl" if path.is_dir() else path
    if campaign.exists():
        st = campaign.stat()
        return (st.st_size,)
    if path.is_dir():
        return tuple(
            (p.name, p.stat().st_size) for p in _resolve_logs(path)
        )
    return ()


def cmd_tail(args: argparse.Namespace) -> int:
    """``repro obs tail``: latest status of a campaign (or run-log dir).

    ``--follow`` polls the log and re-renders on change (bounded by the
    poll interval, so a hot campaign does not melt the terminal); Ctrl-C
    exits cleanly.
    """
    path = Path(args.log)
    if not getattr(args, "follow", False):
        code, text = _tail_render(path)
        print(text, file=sys.stderr if code else sys.stdout)
        return code
    interval = max(0.1, float(getattr(args, "interval", 2.0)))
    max_updates = getattr(args, "max_updates", None)  # test seam
    last_fp: Optional[Tuple] = None
    updates = 0
    try:
        while True:
            fp = _tail_fingerprint(path)
            if fp != last_fp:
                last_fp = fp
                code, text = _tail_render(path)
                if sys.stdout.isatty():
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
                stamp = time.strftime("%H:%M:%S")
                print(f"-- repro obs tail {path} @ {stamp} --")
                print(text, flush=True)
                updates += 1
                if max_updates is not None and updates >= max_updates:
                    return code
            time.sleep(interval)
    except KeyboardInterrupt:
        print("", flush=True)  # leave the shell prompt on its own line
        return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro obs trace``: export run logs as a Chrome/Perfetto trace."""
    from repro.obs.chrome_trace import validate_chrome_trace, write_chrome_trace

    path = Path(args.log)
    paths = _resolve_logs(path)
    if not paths:
        print(f"no run logs under {args.log}", file=sys.stderr)
        return 1
    out = args.out
    if not out:
        out = str(path / "trace.json" if path.is_dir()
                  else path.with_suffix(".trace.json"))
    try:
        doc = write_chrome_trace(paths, out)
    except (OSError, ValueError) as exc:
        print(f"{args.log}: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(doc)
    for p in problems:
        print(f"{out}: {p}", file=sys.stderr)
    meta = doc.get("otherData", {})
    print(
        f"wrote {out}: {len(doc['traceEvents'])} events from "
        f"{meta.get('spans', 0)} spans + {meta.get('profiles', 0)} profiles "
        f"across {len(paths)} log(s) — load it at https://ui.perfetto.dev"
    )
    if meta.get("spans", 0) == 0:
        print("note: no span records found — run with --trace to record them",
              file=sys.stderr)
    return 1 if problems else 0


def _profile_records(paths: List[Path]) -> List[Tuple[Path, Dict[str, Any]]]:
    found = []
    for p in paths:
        if p.name == "campaign.jsonl":
            continue
        for r in read_run_log(p):
            if r.get("record") == "profile":
                found.append((p, r))
    return found


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro obs profile``: per-event-kind self-time table(s)."""
    paths = _resolve_logs(Path(args.log))
    try:
        profiles = _profile_records(paths)
    except (OSError, ValueError) as exc:
        print(f"{args.log}: {exc}", file=sys.stderr)
        return 1
    if not profiles:
        print(f"no profile records under {args.log} "
              "(run with --profile to record them)", file=sys.stderr)
        return 1
    blocks = [
        render_profile(prof, top=args.top, source=str(p))
        for p, prof in profiles
    ]
    print("\n\n".join(blocks))
    return 0


def _diff_side(arg: str) -> Tuple[str, Dict[str, float], Optional[Dict[str, Any]]]:
    """Load one ``repro obs diff`` side: (name, phase durations, profile)."""
    path = Path(arg)
    paths = _resolve_logs(path)
    spans: List[Dict[str, Any]] = []
    profile: Optional[Dict[str, Any]] = None
    for p in paths:
        for r in read_run_log(p):
            if r.get("record") == "span":
                spans.append(r)
            elif r.get("record") == "profile":
                # Aggregate profiles across a campaign's run logs.
                if profile is None:
                    profile = {"kinds": {}, "loop_wall_s": 0.0, "events": 0}
                profile["loop_wall_s"] += float(r.get("loop_wall_s", 0.0))
                profile["events"] += int(r.get("events", 0))
                for kind, row in (r.get("kinds") or {}).items():
                    agg = profile["kinds"].setdefault(
                        kind, {"self_s": 0.0, "events": 0}
                    )
                    agg["self_s"] += float(row.get("self_s", 0.0))
                    agg["events"] += int(row.get("events", 0))
    return path.name or str(path), _phase_durations(spans), profile


def _fmt_delta(a: float, b: float) -> str:
    delta = b - a
    pct = f" ({delta / a * 100.0:+.1f}%)" if a > 0 else ""
    return f"{delta:+.3f}s{pct}"


def cmd_diff(args: argparse.Namespace) -> int:
    """``repro obs diff``: phase-by-phase comparison of two runs/campaigns."""
    try:
        name_a, phases_a, prof_a = _diff_side(args.a)
        name_b, phases_b, prof_b = _diff_side(args.b)
    except (OSError, ValueError) as exc:
        print(f"obs diff: {exc}", file=sys.stderr)
        return 1
    if not phases_a and not phases_b and prof_a is None and prof_b is None:
        print("no span or profile records on either side", file=sys.stderr)
        return 1
    lines = [f"A = {args.a}", f"B = {args.b}", ""]
    names = sorted(set(phases_a) | set(phases_b),
                   key=lambda n: -max(phases_a.get(n, 0.0), phases_b.get(n, 0.0)))
    if names:
        lines.append(f"{'phase':<20s} {'A':>10s} {'B':>10s}  delta")
        for n in names:
            a, b = phases_a.get(n, 0.0), phases_b.get(n, 0.0)
            lines.append(f"{n:<20s} {a:>9.3f}s {b:>9.3f}s  {_fmt_delta(a, b)}")
    if prof_a is not None and prof_b is not None:
        lines.append("")
        lines.append(f"{'event kind':<20s} {'A':>10s} {'B':>10s}  delta")
        for kind, a, b in diff_profiles(prof_a, prof_b):
            lines.append(f"{kind:<20s} {a:>9.3f}s {b:>9.3f}s  {_fmt_delta(a, b)}")
    elif prof_a is not None or prof_b is not None:
        lines.append("")
        lines.append("profile records on one side only — kind diff skipped")
    print("\n".join(lines))
    return 0


def cmd_fairness_summary(args: argparse.Namespace) -> int:
    """``repro obs fairness summary``: per-cell fairness digest of a store."""
    from repro.obs.drift import render_fairness_summary, summarize_fairness

    try:
        rows = summarize_fairness(args.results)
    except (OSError, ValueError) as exc:
        print(f"fairness summary: {exc}", file=sys.stderr)
        return 1
    print(render_fairness_summary(rows))
    return 0


def cmd_fairness_drift(args: argparse.Namespace) -> int:
    """``repro obs fairness drift``: diff two result sets cell-by-cell.

    Exit codes: 0 clean, 1 unreadable input, 2 drift detected — so CI can
    gate on drift without conflating it with tooling failures.
    """
    from repro.obs.drift import DriftTolerance, detect_drift, render_drift_report

    tolerance = DriftTolerance(
        jain=args.jain_tol, phi=args.phi_tol,
        rr_rel=args.rr_tol, rr_abs=args.rr_abs,
    )
    try:
        report = detect_drift(args.a, args.b, tolerance=tolerance)
    except (OSError, ValueError) as exc:
        print(f"fairness drift: {exc}", file=sys.stderr)
        return 1
    print(render_drift_report(report, verbose=args.verbose))
    return 0 if report.clean else 2


def add_obs_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``obs`` subcommand tree on the top-level CLI parser."""
    p_obs = sub.add_parser("obs", help="inspect telemetry run logs and export metrics")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_sum = obs_sub.add_parser("summary", help="render a run log (or telemetry dir) digest")
    p_sum.add_argument("log", help="run-log .jsonl file or telemetry directory")
    p_sum.set_defaults(func=cmd_summary)

    p_val = obs_sub.add_parser("validate", help="schema-check run logs; exit 1 on problems")
    p_val.add_argument("log", help="run-log .jsonl file or telemetry directory")
    p_val.set_defaults(func=cmd_validate)

    p_prom = obs_sub.add_parser("prom", help="export a run log's metrics as Prometheus text")
    p_prom.add_argument("log", help="run-log .jsonl file (or telemetry dir: newest log)")
    p_prom.add_argument("--out", default="-", help="output file ('-' = stdout)")
    p_prom.set_defaults(func=cmd_prom)

    p_tail = obs_sub.add_parser("tail", help="latest status of a (live) campaign directory")
    p_tail.add_argument("log", help="telemetry directory or campaign.jsonl")
    p_tail.add_argument("-f", "--follow", action="store_true",
                        help="poll the log and re-render on change (Ctrl-C exits)")
    p_tail.add_argument("--interval", type=float, default=2.0,
                        help="poll cadence in seconds with --follow (default 2)")
    p_tail.add_argument("--max-updates", type=int, default=None,
                        help=argparse.SUPPRESS)  # test seam: stop after N renders
    p_tail.set_defaults(func=cmd_tail)

    p_trace = obs_sub.add_parser(
        "trace", help="export span/profile records as a Chrome/Perfetto trace"
    )
    p_trace.add_argument("log", help="run-log .jsonl file or telemetry directory")
    p_trace.add_argument("--out", default=None,
                         help="output .json (default: <dir>/trace.json)")
    p_trace.set_defaults(func=cmd_trace)

    p_prof = obs_sub.add_parser(
        "profile", help="render event-loop self-time tables from profile records"
    )
    p_prof.add_argument("log", help="run-log .jsonl file or telemetry directory")
    p_prof.add_argument("--top", type=int, default=0,
                        help="only the N largest kinds (default: all)")
    p_prof.set_defaults(func=cmd_profile)

    p_diff = obs_sub.add_parser(
        "diff", help="compare two runs/campaigns phase-by-phase and kind-by-kind"
    )
    p_diff.add_argument("a", help="baseline run log or telemetry directory")
    p_diff.add_argument("b", help="candidate run log or telemetry directory")
    p_diff.set_defaults(func=cmd_diff)

    p_fair = obs_sub.add_parser(
        "fairness", help="campaign-level fairness aggregation and drift gate"
    )
    fair_sub = p_fair.add_subparsers(dest="fairness_command", required=True)

    p_fsum = fair_sub.add_parser(
        "summary", help="per-cell Jain/phi/RR + dynamics digest of a result store"
    )
    p_fsum.add_argument(
        "results", help="results .jsonl store, .json fixture, or directory of either"
    )
    p_fsum.set_defaults(func=cmd_fairness_summary)

    p_fdrift = fair_sub.add_parser(
        "drift",
        help="diff per-cell fairness between two result sets (exit 2 on drift)",
    )
    p_fdrift.add_argument("a", help="baseline results store/fixture/directory")
    p_fdrift.add_argument("b", help="candidate results store/fixture/directory")
    p_fdrift.add_argument("--jain-tol", type=float, default=0.05,
                          help="max |mean Jain| shift per cell (default 0.05)")
    p_fdrift.add_argument("--phi-tol", type=float, default=0.05,
                          help="max |mean phi| shift per cell (default 0.05)")
    p_fdrift.add_argument("--rr-tol", type=float, default=0.25,
                          help="max relative retransmit shift (default 0.25)")
    p_fdrift.add_argument("--rr-abs", type=float, default=10.0,
                          help="absolute retransmit shift floor (default 10)")
    p_fdrift.add_argument("-v", "--verbose", action="store_true",
                          help="also list cells present on only one side")
    p_fdrift.set_defaults(func=cmd_fairness_drift)
