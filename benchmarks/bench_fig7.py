"""Figure 7: overall link utilization, intra-CCA experiments.

Six panels: FIFO / RED / FQ_CODEL at 2 and 16 BDP across the five
bandwidth tiers.  Shape targets: FIFO ~ full everywhere; FQ_CODEL near
full with a shortfall at 25 Gbps; RED degrading from ~1 Gbps up.
"""

from benchmarks.common import INTRA_PAIRS, SPOTLIGHT_BUFFERS, banner, run_once, sweep
from repro.analysis.figures import fig7_series
from repro.analysis.report import render_intra_metric_panels
from repro.units import gbps, mbps


def _regenerate():
    results = sweep(
        cca_pairs=INTRA_PAIRS,
        aqms=("fifo", "red", "fq_codel"),
        buffer_bdps=SPOTLIGHT_BUFFERS,
    )
    return fig7_series(results, buffers=SPOTLIGHT_BUFFERS)


def test_fig7_link_utilization(benchmark):
    series = run_once(benchmark, _regenerate)
    print(banner("Figure 7 — intra-CCA link utilization (phi)"))
    print(render_intra_metric_panels(series))

    bandwidths = series["fifo"]["2bdp"]["bandwidths"]
    i_low = bandwidths.index(mbps(100))
    i_1g = bandwidths.index(gbps(1))
    i_25g = bandwidths.index(gbps(25))

    # FIFO: every CCA fills the link at (almost) every tier.
    for buf in ("2bdp", "16bdp"):
        panel = series["fifo"][buf]
        for cca, values in panel.items():
            if cca == "bandwidths":
                continue
            assert min(values) > 0.8, f"fifo {cca} {buf}: {values}"

    # RED: loss-based CCAs lose utilization at >= 1 Gbps vs 100 Mbps.
    for cca in ("reno", "cubic", "htcp"):
        values = series["red"]["2bdp"][cca]
        assert values[i_25g] < values[i_low] + 0.02, f"red {cca}: {values}"

    # FQ_CODEL: high everywhere, 25G at or below the FIFO reference.
    fq = series["fq_codel"]["2bdp"]
    fifo = series["fifo"]["2bdp"]
    for cca in ("cubic", "bbrv2"):
        assert fq[cca][i_1g] > 0.85
        assert fq[cca][i_25g] <= fifo[cca][i_25g] + 0.05
