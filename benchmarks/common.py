"""Shared infrastructure for the figure/table benches.

Every bench regenerates one paper artifact end to end: it sweeps the
relevant slice of the Table 1 grid on the fluid engine (the full-scale
tiers; the packet engine anchors it — see ``bench_scaled_des.py``),
reduces the results with the analysis layer, and prints the same
rows/series the paper reports.  pytest-benchmark times the regeneration.

Durations are shorter than the paper's 200 s (with the startup transient
excluded) so the whole harness runs in minutes; the CLI's ``repro sweep
--preset paper-fluid`` reproduces the full-length campaign.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.aggregate import ResultSet
from repro.experiments.config import (
    PAPER_BANDWIDTHS_BPS,
    PAPER_BUFFER_BDPS,
    PAPER_CCA_PAIRS,
)
from repro.experiments.matrix import full_matrix
from repro.experiments.runner import run_experiment

BENCH_DURATION_S = 25.0
BENCH_WARMUP_S = 5.0
#: The figures' spotlight buffer sizes (paper Figs 3, 5, 6, 7, 8).
SPOTLIGHT_BUFFERS = (2.0, 16.0)

INTER_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    p for p in PAPER_CCA_PAIRS if p[0] != p[1]
)
INTRA_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    p for p in PAPER_CCA_PAIRS if p[0] == p[1]
)


def sweep(
    *,
    cca_pairs: Sequence[Tuple[str, str]] = PAPER_CCA_PAIRS,
    aqms: Sequence[str] = ("fifo",),
    buffer_bdps: Sequence[float] = PAPER_BUFFER_BDPS,
    bandwidths_bps: Sequence[float] = PAPER_BANDWIDTHS_BPS,
    duration_s: float = BENCH_DURATION_S,
    engine: str = "fluid",
    base_seed: int = 1,
    **overrides,
) -> ResultSet:
    """Run one slice of the grid and return the results."""
    configs = full_matrix(
        cca_pairs=cca_pairs,
        aqms=aqms,
        buffer_bdps=buffer_bdps,
        bandwidths_bps=bandwidths_bps,
        duration_s=duration_s,
        engine=engine,
        base_seed=base_seed,
        warmup_s=BENCH_WARMUP_S if duration_s > BENCH_WARMUP_S else 0.0,
        **overrides,
    )
    return ResultSet([run_experiment(cfg) for cfg in configs])


def run_once(benchmark, fn):
    """Time a multi-second regeneration exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"
