"""Extension: elephants sharing with mice.

The paper's motivation contrasts science networks (elephants) with
commercial traffic (mice) and observes that per-flow queueing is what
keeps the two coexisting.  This bench quantifies it: short Poisson
flows' completion times while a CUBIC elephant fills the bottleneck,
under each AQM (packet engine).
"""

from benchmarks.common import banner, run_once
from repro.cca.registry import make_cca
from repro.tcp.connection import open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.traffic.mice import PoissonMice
from repro.units import mbps, seconds

AQMS = ("fifo", "red", "fq_codel", "pie")


def _run(aqm):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=8.0, aqm=aqm,
                       mss_bytes=1500, seed=11)
    )
    elephant = open_connection(
        db.clients[0], db.servers[0],
        make_cca("cubic", db.network.rng.stream("cca")), mss=1500,
    )
    elephant.start()
    mice = PoissonMice(
        db.clients[1], db.servers[1],
        rate_per_s=5.0, size_segments=5, mss=1500,
        rng=db.network.rng.stream("mice"),
    )
    db.network.run(seconds(5))  # elephant fills the buffer first
    mice.start()
    db.network.run(seconds(30))
    mice.stop()
    elephant_bps = elephant.receiver.bytes_received * 8 / 30
    return mice.fct_stats_ns(), elephant_bps


def _regenerate():
    return {aqm: _run(aqm) for aqm in AQMS}


def test_mice_fct_per_aqm(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Extension — mice FCT under a CUBIC elephant (20 Mbps, 8 BDP)"))
    print(f"  {'aqm':<9s} {'mice':>5s} {'p50 FCT':>9s} {'p95 FCT':>9s} {'elephant':>9s}")
    for aqm, (stats, elephant_bps) in outcomes.items():
        print(
            f"  {aqm:<9s} {stats['count']:>5d} {stats['p50'] / 1e6:>7.0f}ms "
            f"{stats['p95'] / 1e6:>7.0f}ms {elephant_bps / 1e6:>7.1f}Mb"
        )
    # Per-flow queueing protects the mice from the elephant's bufferbloat.
    assert outcomes["fq_codel"][0]["p50"] < 0.7 * outcomes["fifo"][0]["p50"]
    # Delay-target AQMs (fq_codel, pie) beat the deep FIFO for mice.
    assert outcomes["pie"][0]["p50"] < outcomes["fifo"][0]["p50"]
