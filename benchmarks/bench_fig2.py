"""Figure 2: per-sender throughput vs buffer size, AQM = FIFO.

Regenerates the paper's (a)-(t) panel grid — each inter-CCA pair
({BBRv1, BBRv2, HTCP, Reno} vs CUBIC) across all six buffer sizes at
every bandwidth tier — and checks the headline shape: an equilibrium
buffer size below which the challenger beats CUBIC and above which
CUBIC takes over, shifting right as bandwidth grows.
"""

from benchmarks.common import INTER_PAIRS, banner, run_once, sweep
from repro.analysis.figures import equilibrium_points, fig2_series
from repro.analysis.report import render_inter_panels


def _regenerate():
    results = sweep(cca_pairs=INTER_PAIRS, aqms=("fifo",))
    return results, fig2_series(results, aqm="fifo")


def test_fig2_per_sender_throughput_fifo(benchmark):
    results, series = run_once(benchmark, _regenerate)
    print(banner("Figure 2 — per-sender throughput vs buffer, AQM=FIFO"))
    print(render_inter_panels(series))
    for pair in ("bbrv1-vs-cubic", "bbrv2-vs-cubic"):
        points = equilibrium_points(series, pair)
        rendered = ", ".join(f"{bw}: {buf:g} BDP" for bw, buf in points.items())
        print(f"equilibrium points [{pair}]: {rendered}")
        print("  (paper: ~2 BDP at 100 Mbps shifting to ~3.5 BDP at 25 Gbps for BBRv1)")

    # Shape check: BBRv1 vs CUBIC flips from BBR-dominant to
    # CUBIC-dominant as the buffer grows (all bandwidth tiers).
    for bw_label, panel in series["bbrv1-vs-cubic"].items():
        first_gap = panel["cca1_bps"][0] - panel["cca2_bps"][0]
        last_gap = panel["cca1_bps"][-1] - panel["cca2_bps"][-1]
        assert first_gap > 0, f"{bw_label}: BBRv1 should win at 0.5 BDP"
        assert last_gap < 0, f"{bw_label}: CUBIC should win at 16 BDP"
