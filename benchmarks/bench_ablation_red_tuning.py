"""Ablation: retuning RED's thresholds for high bandwidth.

The paper attributes RED's poor high-bandwidth utilization to its
"internal parameters [that] need to be properly optimized" (§5.3) and
calls optimizing them an open problem.  This ablation tests that
hypothesis directly: re-running the high-tier loss-based sweeps with
thresholds scaled to the BDP instead of the fixed classic defaults.
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import bdp_bytes, gbps
from repro.testbed.sites import PAPER_RTT_NS

PAIRS = (("reno", "reno"), ("cubic", "cubic"), ("htcp", "htcp"))
BW = gbps(10)


def _run(pair, tuned: bool):
    params = {}
    if tuned:
        # min/max at 1/12 and 1/4 of the BDP — scaled with the tier.
        bdp_pkts = bdp_bytes(BW, PAPER_RTT_NS) / 8900
        params = {"min_th": bdp_pkts / 12, "max_th": bdp_pkts / 4}
    return run_experiment(
        ExperimentConfig(
            cca_pair=pair, aqm="red", buffer_bdp=2.0, bottleneck_bw_bps=BW,
            duration_s=30.0, warmup_s=5.0, engine="fluid", seed=23,
            aqm_params=params,
        )
    )


def _regenerate():
    return [
        (pair, _run(pair, tuned=False), _run(pair, tuned=True))
        for pair in PAIRS
    ]


def test_red_tuning_restores_utilization(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Ablation — RED thresholds: classic defaults vs BDP-scaled (10 Gbps)"))
    print(f"  {'pair':<14s} {'phi default':>12s} {'phi tuned':>10s}")
    improved = 0
    for pair, default, tuned in outcomes:
        print(
            f"  {pair[0] + '-' + pair[1]:<14s} {default.link_utilization:>12.3f} "
            f"{tuned.link_utilization:>10.3f}"
        )
        if tuned.link_utilization > default.link_utilization:
            improved += 1
    # The paper's hypothesis holds: scaling the thresholds recovers
    # utilization for (at least most of) the loss-based algorithms.
    assert improved >= 2
