"""Figure 5: Jain's fairness index, AQM = RED.

RED is the worst AQM for inter-CCA fairness when a BBR flavour is
involved (J ~ 0.5 for BBRv1 vs CUBIC), while Reno/HTCP/CUBIC pairs and
all intra-CCA runs stay near 1.
"""

from benchmarks.common import SPOTLIGHT_BUFFERS, banner, run_once, sweep
from repro.analysis.figures import fig5_series
from repro.analysis.report import render_jain_panels


def _regenerate():
    results = sweep(aqms=("red",), buffer_bdps=SPOTLIGHT_BUFFERS)
    return fig5_series(results, buffers=SPOTLIGHT_BUFFERS)


def test_fig5_jain_index_red(benchmark):
    series = run_once(benchmark, _regenerate)
    print(banner("Figure 5 — Jain index, AQM=RED (inter & intra, 2/16 BDP)"))
    print(render_jain_panels(series))

    for buf in ("2bdp", "16bdp"):
        bbr = series["inter"][buf]["bbrv1-vs-cubic"]
        mean_bbr = sum(bbr) / len(bbr)
        assert mean_bbr < 0.75, f"BBRv1-CUBIC under RED should be unfair, got {mean_bbr:.3f}"
        reno = series["inter"][buf]["reno-vs-cubic"]
        assert sum(reno) / len(reno) > 0.9
        # Intra-CCA (other than BBRv1's RTO lottery) is fair.
        for name in ("cubic-vs-cubic", "reno-vs-reno", "htcp-vs-htcp"):
            values = series["intra"][buf][name]
            assert sum(values) / len(values) > 0.9, name
