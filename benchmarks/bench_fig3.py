"""Figure 3: Jain's fairness index, AQM = FIFO.

Panels (a)-(b): inter-CCA at 2 and 16 BDP; (c)-(d): intra-CCA at the
same buffers, across the five bandwidth tiers.
"""

from benchmarks.common import SPOTLIGHT_BUFFERS, banner, run_once, sweep
from repro.analysis.figures import fig3_series
from repro.analysis.report import render_jain_panels


def _regenerate():
    results = sweep(aqms=("fifo",), buffer_bdps=SPOTLIGHT_BUFFERS)
    return fig3_series(results, aqm="fifo", buffers=SPOTLIGHT_BUFFERS)


def test_fig3_jain_index_fifo(benchmark):
    series = run_once(benchmark, _regenerate)
    print(banner("Figure 3 — Jain index, AQM=FIFO (inter & intra, 2/16 BDP)"))
    print(render_jain_panels(series))

    # Intra-CCA runs are fair at both buffer sizes (paper (c)-(d)).
    for buf in ("2bdp", "16bdp"):
        for name, values in series["intra"][buf].items():
            if name == "bandwidths":
                continue
            mean_j = sum(values) / len(values)
            assert mean_j > 0.85, f"intra {name} at {buf}: J={mean_j:.3f}"

    # Inter-CCA at 16 BDP: BBRv1 vs CUBIC fairness is clearly degraded
    # relative to intra (paper: "fairness decreases significantly").
    bbr_16 = series["inter"]["16bdp"]["bbrv1-vs-cubic"]
    assert min(bbr_16) < 0.9
