"""Ablation: ECN marking instead of dropping (packet engine).

BBRv2 supports ECN as a congestion signal (paper §3.1.2); the main
experiments run without it.  This ablation flips the bottleneck AQM to
marking mode and checks that marking removes (almost) all retransmissions
while keeping throughput — the mechanism ECN exists for.
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.units import mbps


def _run(pair, ecn: bool):
    return run_packet_experiment(
        ExperimentConfig(
            cca_pair=pair, aqm="red", buffer_bdp=2.0,
            bottleneck_bw_bps=mbps(100), scale=5.0, duration_s=20.0,
            warmup_s=4.0, mss_bytes=1500, flows_per_node=1, seed=37,
            ecn_mode=ecn,
        )
    )


def _regenerate():
    return {
        pair: (_run(pair, False), _run(pair, True))
        for pair in (("cubic", "cubic"), ("bbrv2", "bbrv2"))
    }


def test_ecn_marking_removes_retransmissions(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Ablation — RED drop vs RED+ECN mark (packet engine, 20 Mbps)"))
    for pair, (drop, mark) in outcomes.items():
        print(
            f"  {pair[0]:<6s}: drop retx={drop.total_retransmits:>5d} phi={drop.link_utilization:.3f}"
            f"  |  ecn retx={mark.total_retransmits:>5d} phi={mark.link_utilization:.3f}"
        )
        assert mark.total_retransmits < max(5, drop.total_retransmits)
        assert mark.link_utilization > 0.7
