#!/usr/bin/env python
"""Benchmark-regression harness entry point.

Thin wrapper over :mod:`repro.bench.harness` so the suite can be driven
straight from a checkout::

    PYTHONPATH=src python benchmarks/harness.py            # full run + gate
    PYTHONPATH=src python benchmarks/harness.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/harness.py --list

See docs/BENCHMARKING.md for baselines and tolerance budgets.
"""

import sys
from pathlib import Path

# Allow running without PYTHONPATH=src from the repo root.
_src = Path(__file__).resolve().parent.parent / "src"
if str(_src) not in sys.path:
    sys.path.insert(0, str(_src))

from repro.bench.harness import main

if __name__ == "__main__":
    sys.exit(main())
