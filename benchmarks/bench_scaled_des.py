"""Packet-engine anchor: a scaled-rate slice of the grid on the DES.

The figure benches run on the fluid engine (the only way to reach the
10/25 Gbps tiers in Python); this bench regenerates the same headline
comparisons at packet granularity with rates scaled down 250x, verifying
the fluid results aren't artifacts of the mean-field approximation.
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.units import mbps

SCALE_NOTE = "packet engine, rates = paper tiers / 250, mss 1500"

CASES = [
    # (pair, aqm, buffer, expectation key)
    (("bbrv1", "cubic"), "fifo", 0.5, "bbr_wins"),
    (("bbrv1", "cubic"), "fifo", 16.0, "cubic_wins"),
    (("bbrv1", "cubic"), "red", 2.0, "bbr_starves_cubic"),
    (("bbrv1", "cubic"), "fq_codel", 2.0, "fair"),
    (("cubic", "cubic"), "fifo", 2.0, "fair"),
    (("reno", "reno"), "red", 2.0, "fair"),
]


def _run_case(pair, aqm, buf):
    return run_packet_experiment(
        ExperimentConfig(
            cca_pair=pair, aqm=aqm, buffer_bdp=buf,
            bottleneck_bw_bps=mbps(100), scale=5.0,  # 20 Mbps effective
            duration_s=20.0, warmup_s=4.0, mss_bytes=1500,
            flows_per_node=1, seed=17,
        )
    )


def _regenerate():
    return [(case, _run_case(*case[:3])) for case in CASES]


def test_scaled_des_anchor(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner(f"Packet-engine anchor ({SCALE_NOTE})"))
    for (pair, aqm, buf, expect), r in outcomes:
        s1, s2 = r.senders[0].throughput_bps, r.senders[1].throughput_bps
        print(
            f"  {pair[0]:>5s} vs {pair[1]:<5s} {aqm:<8s} {buf:>4.1f}BDP: "
            f"{s1 / 1e6:6.2f} / {s2 / 1e6:6.2f} Mbps  J={r.jain_index:.3f} "
            f"phi={r.link_utilization:.3f} retx={r.total_retransmits}"
        )
        if expect == "bbr_wins":
            assert s1 > s2
        elif expect == "cubic_wins":
            assert s2 > s1
        elif expect == "bbr_starves_cubic":
            assert s1 > 3 * s2
        elif expect == "fair":
            assert r.jain_index > 0.85
