"""Figure 4: per-sender throughput vs buffer size, AQM = RED.

The headline result: BBRv1 (and BBRv2) consume nearly all bandwidth
while CUBIC is starved, at every buffer size and bandwidth; Reno and
HTCP are far more balanced.
"""

from benchmarks.common import INTER_PAIRS, banner, run_once, sweep
from repro.analysis.figures import fig4_series
from repro.analysis.report import render_inter_panels


def _regenerate():
    results = sweep(cca_pairs=INTER_PAIRS, aqms=("red",))
    return fig4_series(results)


def test_fig4_per_sender_throughput_red(benchmark):
    series = run_once(benchmark, _regenerate)
    print(banner("Figure 4 — per-sender throughput vs buffer, AQM=RED"))
    print(render_inter_panels(series))

    # BBRv1 starves CUBIC at every buffer size and tier (paper (a)-(e)).
    for bw_label, panel in series["bbrv1-vs-cubic"].items():
        for bbr, cubic in zip(panel["cca1_bps"], panel["cca2_bps"]):
            assert bbr > 2 * cubic, f"{bw_label}: {bbr/1e6:.0f} vs {cubic/1e6:.0f} Mbps"

    # Reno vs CUBIC stays balanced under RED (paper (p)-(t)).
    for bw_label, panel in series["reno-vs-cubic"].items():
        for reno, cubic in zip(panel["cca1_bps"], panel["cca2_bps"]):
            total = reno + cubic
            assert abs(reno - cubic) < 0.6 * total, bw_label
