"""Table 3: overall performance comparison — the paper's summary artifact.

Sweeps all 9 CCA pairs x 3 AQMs x all six buffer sizes x all five
bandwidth tiers (the full 810-cell grid, shortened runs), computes
Avg(phi), Avg(RR), Avg(J_index) exactly as the paper does (RR normalized
per condition against CUBIC-vs-CUBIC), and prints measured values beside
the published ones.

Shape assertions encode the paper's conclusions:
- BBRv1 has by far the highest RR under every AQM;
- RED has the worst average fairness for BBR-vs-CUBIC (J ~ 0.5-0.75);
- FQ_CODEL's fairness is ~1.0 across the board;
- RED's average utilization trails FIFO's.
"""

from benchmarks.common import banner, run_once, sweep
from repro.analysis.table3 import build_table3, render_table3


def _regenerate():
    # The paper averages over ALL buffer sizes — the 0.5/1 BDP cells are
    # where BBR's FIFO retransmission burden comes from.
    results = sweep(
        aqms=("fifo", "red", "fq_codel"),
        duration_s=20.0,
    )
    return build_table3(results)


def test_table3_overall_comparison(benchmark):
    rows = run_once(benchmark, _regenerate)
    print(banner("Table 3 — overall comparison (measured vs paper)"))
    print(render_table3(rows))

    by_key = {r.key: r for r in rows}
    assert len(rows) == 27

    # BBRv1's relative retransmissions dwarf everyone's, per AQM.
    for aqm in ("fifo", "red", "fq_codel"):
        bbr1_rr = by_key[("bbrv1", "bbrv1", aqm)].avg_rr
        for other in ("bbrv2", "htcp", "reno", "cubic"):
            rr = by_key[(other, other, aqm)].avg_rr
            assert bbr1_rr > rr, f"{aqm}: bbrv1 RR {bbr1_rr:.1f} <= {other} {rr:.1f}"

    # RED: BBRv1 vs CUBIC is the unfairness floor (paper: 0.522).
    assert by_key[("bbrv1", "cubic", "red")].avg_jain < 0.75
    # FQ_CODEL: everything fair.
    for key, row in by_key.items():
        if key[2] == "fq_codel":
            assert row.avg_jain > 0.9, key
    # RED's mean utilization trails FIFO's.
    red_util = sum(r.avg_utilization for r in rows if r.aqm == "red") / 9
    fifo_util = sum(r.avg_utilization for r in rows if r.aqm == "fifo") / 9
    assert red_util < fifo_util
    # CUBIC-vs-CUBIC baselines are exactly RR = 1.
    for aqm in ("fifo", "red", "fq_codel"):
        assert abs(by_key[("cubic", "cubic", aqm)].avg_rr - 1.0) < 1e-9
