"""Ablation: varying the path RTT (the paper's declared future work).

The paper fixes RTT at 62 ms and conjectures its qualitative findings
replicate at other RTTs.  This bench re-runs the headline FIFO
equilibrium comparison at 0.5x, 1x, and 2x the paper RTT.
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import gbps

MULTIPLIERS = (0.5, 1.0, 2.0)


def _run(buffer_bdp, mult):
    return run_experiment(
        ExperimentConfig(
            cca_pair=("bbrv1", "cubic"), aqm="fifo", buffer_bdp=buffer_bdp,
            bottleneck_bw_bps=gbps(1), duration_s=30.0, warmup_s=5.0,
            engine="fluid", seed=29, delay_multiplier=mult,
        )
    )


def _regenerate():
    return {
        mult: (_run(0.5, mult), _run(16.0, mult)) for mult in MULTIPLIERS
    }


def test_findings_replicate_across_rtts(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Ablation — RTT sensitivity (BBRv1 vs CUBIC, FIFO, 1 Gbps)"))
    print(f"  {'RTT':>7s} {'0.5BDP bbr/cubic (Mbps)':>26s} {'16BDP bbr/cubic (Mbps)':>25s}")
    for mult, (small, large) in sorted(outcomes.items()):
        s1, s2 = small.senders[0].throughput_bps / 1e6, small.senders[1].throughput_bps / 1e6
        l1, l2 = large.senders[0].throughput_bps / 1e6, large.senders[1].throughput_bps / 1e6
        print(f"  {62 * mult:>5.0f}ms {s1:>12.1f}/{s2:<12.1f} {l1:>12.1f}/{l2:<12.1f}")
        # The qualitative finding holds at every RTT (paper's conjecture).
        assert s1 > s2, f"RTT x{mult}: BBRv1 should win at 0.5 BDP"
        assert l2 > l1, f"RTT x{mult}: CUBIC should win at 16 BDP"
