"""Figure 6: Jain's fairness index, AQM = FQ_CODEL.

Per-flow queueing equalizes everything: J ~ 1 for every pair, buffer
size, and bandwidth — the paper's cleanest panel.
"""

from benchmarks.common import SPOTLIGHT_BUFFERS, banner, run_once, sweep
from repro.analysis.figures import fig6_series
from repro.analysis.report import render_jain_panels


def _regenerate():
    results = sweep(aqms=("fq_codel",), buffer_bdps=SPOTLIGHT_BUFFERS)
    return fig6_series(results, buffers=SPOTLIGHT_BUFFERS)


def test_fig6_jain_index_fq_codel(benchmark):
    series = run_once(benchmark, _regenerate)
    print(banner("Figure 6 — Jain index, AQM=FQ_CODEL (inter & intra, 2/16 BDP)"))
    print(render_jain_panels(series))

    for kind in ("inter", "intra"):
        for buf in ("2bdp", "16bdp"):
            for name, values in series[kind][buf].items():
                if name == "bandwidths":
                    continue
                mean_j = sum(values) / len(values)
                assert mean_j > 0.9, f"{kind} {name} at {buf}: J={mean_j:.3f}"
