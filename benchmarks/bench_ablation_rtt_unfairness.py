"""Ablation: RTT unfairness (paper §3.1.2: "RTT unfairness ... persists").

The grid keeps both senders on the same 62 ms path; here client2's
access delay is stretched so its flows run at ~3x the RTT of client1's.
Classic expectations, checked on the packet engine:

- loss-based CCAs favour the SHORT-RTT flow (window growth is per-RTT);
- BBR favours the LONG-RTT flow (its 2xBDP inflight cap scales with its
  own larger RTT, so it parks more data in the shared queue).
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.units import mbps

#: client2's access delay stretch: RTT2 = 14ms*20 + 48ms ~ 3x RTT1.
STRETCH = (1.0, 20.0)


def _run(cca):
    return run_packet_experiment(
        ExperimentConfig(
            cca_pair=(cca, cca), aqm="fifo", buffer_bdp=2.0,
            bottleneck_bw_bps=mbps(100), scale=5.0, duration_s=60.0,
            warmup_s=20.0, mss_bytes=1500, flows_per_node=1, seed=53,
            client_delay_multipliers=STRETCH,
        )
    )


def _regenerate():
    return {cca: _run(cca) for cca in ("reno", "cubic", "bbrv1", "bbrv2")}


def test_rtt_unfairness(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Ablation — RTT unfairness: short-RTT vs 3x-RTT sender (FIFO, 2 BDP)"))
    print(f"  {'cca':<7s} {'short-RTT':>10s} {'long-RTT':>10s} {'J':>6s}  (Mbps)")
    ratios = {}
    for cca, r in outcomes.items():
        s_short = r.senders[0].throughput_bps / 1e6
        s_long = r.senders[1].throughput_bps / 1e6
        ratios[cca] = s_short / max(s_long, 1e-9)
        print(f"  {cca:<7s} {s_short:>10.2f} {s_long:>10.2f} {r.jain_index:>6.3f}")

    # Loss-based: the short-RTT flow wins clearly.
    assert ratios["reno"] > 1.5
    assert ratios["cubic"] > 1.2
    # BBR family: the bias flips (or at least vanishes) — long-RTT flows
    # are NOT penalized the way loss-based ones are.
    assert ratios["bbrv1"] < ratios["reno"]
    assert ratios["bbrv1"] < 1.2
    assert ratios["bbrv2"] < ratios["reno"]
