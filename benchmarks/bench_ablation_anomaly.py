"""Ablation: performance under network anomalies (paper future work).

"We intend to ... observe performance under network anomalies (e.g.
variable rates of packet loss)."  This bench injects a mid-run random-loss
episode on the trunk and compares how the loss-tolerant (BBRv2) and
loss-based (CUBIC) algorithms ride through it, using the packet engine.
"""

from benchmarks.common import banner, run_once
from repro.cca.registry import make_cca
from repro.tcp.connection import open_connection
from repro.testbed.anomalies import loss_episode
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds

DURATION_S = 24.0
EPISODE = (8.0, 16.0)  # seconds
LOSS_RATE = 0.03


def _run(cca_name):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=13)
    )
    conn = open_connection(
        db.clients[0], db.servers[0],
        make_cca(cca_name, db.network.rng.stream("cca")), mss=1500,
    )
    conn.start()
    loss_episode(
        db.sim, db.bottleneck_link,
        start_ns=seconds(EPISODE[0]), end_ns=seconds(EPISODE[1]),
        loss_rate=LOSS_RATE, rng=db.network.rng.stream("anomaly"),
    )
    marks = [0]

    def sample():
        marks.append(conn.receiver.bytes_received)
        db.sim.schedule(seconds(2), sample)

    db.sim.schedule(seconds(2), sample)
    db.network.run(seconds(DURATION_S))
    rates_mbps = [(b - a) * 8 / 2 / 1e6 for a, b in zip(marks, marks[1:])]
    return rates_mbps, conn.sender.retransmits


def _phase_mean(rates, lo_s, hi_s):
    lo, hi = int(lo_s // 2), int(hi_s // 2)
    window = rates[lo:hi]
    return sum(window) / len(window)


def _regenerate():
    return {cca: _run(cca) for cca in ("cubic", "bbrv2", "bbrv1")}


def test_loss_episode_response(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner(
        f"Ablation — {LOSS_RATE:.0%} trunk loss episode at t={EPISODE[0]:.0f}-{EPISODE[1]:.0f}s "
        "(packet engine, 20 Mbps)"
    ))
    print(f"  {'cca':<6s} {'before':>8s} {'during':>8s} {'after':>8s} {'retx':>6s}  (Mbps)")
    summary = {}
    for cca, (rates, retx) in outcomes.items():
        before = _phase_mean(rates, 4, EPISODE[0])
        during = _phase_mean(rates, EPISODE[0], EPISODE[1])
        after = _phase_mean(rates, EPISODE[1] + 2, DURATION_S)
        summary[cca] = (before, during, after)
        print(f"  {cca:<6s} {before:>8.2f} {during:>8.2f} {after:>8.2f} {retx:>6d}")

    # Random loss craters the loss-based CCA; loss-blind BBRv1 rides
    # through nearly untouched (at a retransmission cost).
    assert summary["cubic"][1] < 0.6 * summary["cubic"][0]
    assert summary["bbrv1"][1] > 0.7 * summary["bbrv1"][0]
    assert outcomes["bbrv1"][1] > outcomes["bbrv2"][1]  # retx cost
    # CUBIC and BBRv1 recover substantially within 8 s of the episode.
    assert summary["cubic"][2] > 0.3 * summary["cubic"][0]
    assert summary["bbrv1"][2] > 0.7 * summary["bbrv1"][0]
    # BBRv2's 2%-threshold response craters hard and recovers on its
    # ~1.25x-per-probe-cycle bandwidth ratchet: slower, but monotone.
    v2_rates = outcomes["bbrv2"][0]
    post = v2_rates[int((EPISODE[1] + 2) // 2):]
    assert post[-1] > post[0]
