"""Engine micro-benchmarks: event-loop and datapath throughput.

These are the only benches where pytest-benchmark's repeated-rounds
timing is the point: they track the simulator's raw speed, which bounds
how much of the paper's grid the packet engine can cover.
"""

from repro.cca.registry import make_cca
from repro.sim.engine import Simulator
from repro.tcp.connection import open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds


def test_event_loop_throughput(benchmark):
    """Schedule+dispatch cost of the bare event loop (100k events)."""

    def run():
        sim = Simulator()
        count = 100_000

        def noop():
            pass

        for i in range(count):
            sim.schedule(i, noop)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 100_000


def test_timer_churn(benchmark):
    """Cancel/reschedule pattern of TCP retransmission timers."""

    def run():
        sim = Simulator()
        handle = None
        fired = 0

        def tick(i):
            nonlocal handle, fired
            fired += 1
            if handle is not None:
                handle.cancel()
            if i < 20_000:
                handle = sim.schedule(1000, tick, i + 1)

        sim.schedule(0, tick, 0)
        sim.run()
        return fired

    assert benchmark(run) == 20_001


def test_single_flow_datapath(benchmark):
    """Full-stack packets/second: one CUBIC flow over the dumbbell."""

    def run():
        db = build_dumbbell(
            DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0, mss_bytes=1500, seed=1)
        )
        conn = open_connection(db.clients[0], db.servers[0], make_cca("cubic"), mss=1500)
        conn.start()
        db.network.run(seconds(5))
        return db.sim.events_processed

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 10_000


def test_fluid_step_throughput(benchmark):
    """Fluid-engine steps/second with a 500-flow population (the 25G tier)."""
    import numpy as np

    from repro.fluid.aqm_rules import FluidFifo
    from repro.fluid.cca_rules import make_fluid_cca
    from repro.fluid.model import FluidSimulation

    def run():
        rng = np.random.default_rng(1)
        flows = [make_fluid_cca("cubic", rng) for _ in range(500)]
        aqm = FluidFifo(limit_pkts=43_000, capacity_pps=350_000, n_flows=500)
        sim = FluidSimulation(
            capacity_pps=350_000, base_rtt_s=0.062, aqm=aqm, flows=flows,
            arrival_rng=rng,
        )
        sim.run(5.0)
        return sim.delivered_total.sum()

    delivered = benchmark.pedantic(run, rounds=3, iterations=1)
    assert delivered > 0
