"""Engine micro-benchmarks: event-loop and datapath throughput.

These are the only benches where pytest-benchmark's repeated-rounds
timing is the point: they track the simulator's raw speed, which bounds
how much of the paper's grid the packet engine can cover.

The workload bodies live in :mod:`repro.bench.workloads` so the
regression harness (``benchmarks/harness.py``) times exactly the same
code — see docs/BENCHMARKING.md.
"""

from repro.bench.workloads import (
    event_loop,
    fluid_steps,
    single_flow_datapath,
    timer_churn,
)


def test_event_loop_throughput(benchmark):
    """Schedule+dispatch cost of the bare event loop (100k events)."""
    events, _ = benchmark(event_loop, 100_000)
    assert events == 100_000


def test_timer_churn(benchmark):
    """Cancel/reschedule pattern of TCP retransmission timers."""
    events, fired = benchmark(timer_churn, 20_000)
    assert fired == 20_001


def test_single_flow_datapath(benchmark):
    """Full-stack packets/second: one CUBIC flow over the dumbbell."""
    events, _ = benchmark.pedantic(
        single_flow_datapath, args=(5.0,), rounds=3, iterations=1
    )
    assert events > 10_000


def test_fluid_step_throughput(benchmark):
    """Fluid-engine steps/second with a 500-flow population (the 25G tier)."""
    _, delivered = benchmark.pedantic(fluid_steps, args=(5.0,), rounds=3, iterations=1)
    assert delivered > 0
