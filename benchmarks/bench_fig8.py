"""Figure 8: retransmission counts, intra-CCA experiments.

Shape targets: BBRv1 dominates every panel; RED/FQ_CODEL retransmissions
grow with bandwidth and barely depend on buffer size; the BBR family's
2 x BDP inflight cap keeps large FIFO buffers nearly loss-free.
"""

from benchmarks.common import INTRA_PAIRS, SPOTLIGHT_BUFFERS, banner, run_once, sweep
from repro.analysis.figures import fig8_series
from repro.analysis.report import render_intra_metric_panels
from repro.units import gbps, mbps


def _regenerate():
    results = sweep(
        cca_pairs=INTRA_PAIRS,
        aqms=("fifo", "red", "fq_codel"),
        buffer_bdps=SPOTLIGHT_BUFFERS,
    )
    return fig8_series(results, buffers=SPOTLIGHT_BUFFERS)


def test_fig8_retransmissions(benchmark):
    series = run_once(benchmark, _regenerate)
    print(banner("Figure 8 — intra-CCA retransmissions"))
    print(render_intra_metric_panels(series, fmt="{:>10.0f}"))

    bandwidths = series["red"]["2bdp"]["bandwidths"]
    i_low = bandwidths.index(mbps(100))
    i_10g = bandwidths.index(gbps(10))

    # RED and FQ_CODEL: retransmissions grow with bandwidth.
    for aqm in ("red", "fq_codel"):
        for cca in ("cubic", "reno", "bbrv1"):
            values = series[aqm]["2bdp"][cca]
            assert values[i_10g] > values[i_low], f"{aqm} {cca}: {values}"

    # BBRv1 is the retransmission champion under RED at high bandwidth.
    red_panel = series["red"]["2bdp"]
    for cca in ("cubic", "reno", "htcp", "bbrv2"):
        assert red_panel["bbrv1"][i_10g] > red_panel[cca][i_10g], cca

    # BBR family: large FIFO buffers stay nearly untouched (inflight cap).
    fifo16 = series["fifo"]["16bdp"]
    for cca in ("bbrv1", "bbrv2"):
        assert fifo16[cca][i_low] <= series["fifo"]["2bdp"][cca][i_low] + 5
