"""Tables 1 & 2: the configuration grid and iperf3 flow scaling.

Cheap structural benches: building the full 810-cell matrix and deriving
every Table 2 flow plan.
"""

from benchmarks.common import banner
from repro.experiments.config import PAPER_FLOW_PLANS, flow_plan
from repro.experiments.matrix import full_matrix
from repro.units import format_rate


def test_table1_grid(benchmark):
    configs = benchmark(full_matrix)
    print(banner("Table 1 — configuration grid"))
    print(f"configurations: {len(configs)} (paper: 810)")
    assert len(configs) == 810


def test_table2_flow_plans(benchmark):
    def build():
        return {bw: flow_plan(bw) for bw in PAPER_FLOW_PLANS}

    plans = benchmark(build)
    print(banner("Table 2 — iperf3 configuration per bandwidth tier"))
    for bw, plan in sorted(plans.items()):
        print(
            f"  {format_rate(bw):>9s}: {plan.total_flows:>4d} flows "
            f"({plan.processes_per_node} proc/node x {plan.streams_per_process} streams)"
        )
    totals = [p.total_flows for _, p in sorted(plans.items())]
    assert totals == [2, 10, 20, 200, 500]
