"""Extension: late-comer convergence ("short-term dynamics ... long-term
fairness", paper §1/§3.2).

One flow owns the bottleneck; a second flow of the same CCA joins 10 s
later.  How long until they share fairly?  BBRv1's aggressive startup is
known to bully its way in fast (the paper cites this as a fairness
concern for later-started flows competing with established ones).
"""

from benchmarks.common import banner, run_once
from repro.analysis.convergence import convergence_time_s, jain_series
from repro.analysis.sparkline import sparkline
from repro.cca.registry import make_cca
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_packet_experiment
from repro.metrics.summary import ExperimentResult
from repro.tcp.connection import open_connection
from repro.testbed.dumbbell import DumbbellConfig, build_dumbbell
from repro.units import mbps, seconds

JOIN_S = 10.0
DURATION_S = 40.0


def _run(cca_name):
    db = build_dumbbell(
        DumbbellConfig(bottleneck_bw_bps=mbps(20), buffer_bdp=2.0,
                       mss_bytes=1500, seed=61)
    )
    first = open_connection(db.clients[0], db.servers[0],
                            make_cca(cca_name, db.network.rng.stream("cca")), mss=1500)
    second = open_connection(db.clients[1], db.servers[1],
                             make_cca(cca_name, db.network.rng.stream("cca")), mss=1500)
    first.start()
    second.start(delay_ns=seconds(JOIN_S))

    marks = {1: [0], 2: [0]}

    def sample():
        marks[1].append(first.receiver.bytes_received)
        marks[2].append(second.receiver.bytes_received)
        db.sim.schedule(seconds(1), sample)

    db.sim.schedule(seconds(1), sample)
    db.network.run(seconds(DURATION_S))

    series = {
        k: [(b - a) * 8 for a, b in zip(v, v[1:])] for k, v in marks.items()
    }
    # Jain over the post-join window only.
    join_idx = int(JOIN_S)
    post = [
        [series[1][i], series[2][i]] for i in range(join_idx, len(series[1]))
    ]
    from repro.metrics.fairness import jain_index

    jains = [jain_index(pair) for pair in post]
    t_converge = None
    run = 0
    for i, j in enumerate(jains):
        run = run + 1 if j >= 0.8 else 0
        if run >= 3:
            t_converge = float(i - 1)  # seconds after the join
            break
    return series, jains, t_converge


def _regenerate():
    return {cca: _run(cca) for cca in ("reno", "cubic", "htcp", "bbrv1", "bbrv2")}


def test_latecomer_convergence(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner(f"Extension — late-comer convergence (join at t={JOIN_S:.0f}s, 20 Mbps FIFO)"))
    for cca, (series, jains, t_conv) in outcomes.items():
        label = f"{t_conv:.0f}s" if t_conv is not None else ">window"
        print(f"  {cca:<6s} converge={label:>8s}  J(t): {sparkline(jains, lo=0.5, hi=1.0)}")

    # Every CCA eventually lets the late-comer in.
    for cca, (_, _, t_conv) in outcomes.items():
        assert t_conv is not None, f"{cca} never converged"
    # BBRv1's startup muscles in at least as fast as Reno's slow start
    # pushes against an established queue occupant.
    assert outcomes["bbrv1"][2] <= outcomes["reno"][2] + 10
