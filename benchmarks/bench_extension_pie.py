"""Extension: PIE vs the paper's AQMs at high bandwidth.

The paper's conclusion calls for AQMs that keep working "in a wide range
of BW scenarios, especially considering future Internet".  PIE
(RFC 8033) is the obvious candidate it didn't test; this bench drops it
into the same grid and compares utilization/fairness/retransmissions
against RED and FQ_CODEL at 1 and 25 Gbps.
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import gbps

AQMS = ("red", "fq_codel", "pie")
TIERS = (gbps(1), gbps(25))


def _run(aqm, bw, pair):
    return run_experiment(
        ExperimentConfig(
            cca_pair=pair, aqm=aqm, buffer_bdp=2.0, bottleneck_bw_bps=bw,
            duration_s=30.0, warmup_s=5.0, engine="fluid", seed=43,
        )
    )


def _regenerate():
    out = {}
    for aqm in AQMS:
        for bw in TIERS:
            out[(aqm, bw)] = {
                "intra": _run(aqm, bw, ("cubic", "cubic")),
                "inter": _run(aqm, bw, ("bbrv1", "cubic")),
            }
    return out


def test_pie_against_paper_aqms(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Extension — PIE vs RED vs FQ_CODEL at 1 / 25 Gbps"))
    print(f"  {'aqm':<9s} {'bw':>5s} {'phi(cubic)':>11s} {'retx':>8s} {'J(bbr1/cubic)':>14s}")
    for (aqm, bw), runs in outcomes.items():
        intra, inter = runs["intra"], runs["inter"]
        print(
            f"  {aqm:<9s} {bw / 1e9:>4.0f}G {intra.link_utilization:>11.3f} "
            f"{intra.total_retransmits:>8d} {inter.jain_index:>14.3f}"
        )
    # PIE keeps loss-based utilization at the top tier where RED fails.
    assert outcomes[("pie", gbps(25))]["intra"].link_utilization > \
        outcomes[("red", gbps(25))]["intra"].link_utilization
    # But, like RED, a single shared queue cannot fix BBRv1's dominance —
    # only per-flow queueing (FQ_CODEL) does.
    assert outcomes[("pie", gbps(1))]["inter"].jain_index < \
        outcomes[("fq_codel", gbps(1))]["inter"].jain_index
