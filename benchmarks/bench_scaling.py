"""Contribution #2: CCA scaling capability across flow counts.

"We assess the scaling capability of BBRv1, BBRv2, CUBIC, Reno, and HTCP
in TCP sharing experiments in different BW scenarios."  This bench holds
the tier fixed (1 Gbps) and sweeps the flow population from the 100 Mbps
complement (2 flows) to the 25 Gbps complement (500 flows), checking
that intra-CCA per-flow fairness and utilization survive the scaling.
"""

from benchmarks.common import banner, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.units import gbps

CCAS = ("reno", "cubic", "htcp", "bbrv1", "bbrv2")
FLOWS_PER_NODE = (1, 10, 50, 250)  # 2 ... 500 total


def _run(cca, flows_per_node):
    return run_experiment(
        ExperimentConfig(
            cca_pair=(cca, cca), aqm="fifo", buffer_bdp=2.0,
            bottleneck_bw_bps=gbps(1), duration_s=30.0, warmup_s=5.0,
            engine="fluid", seed=47, flows_per_node=flows_per_node,
        )
    )


def _regenerate():
    return {
        (cca, n): _run(cca, n) for cca in CCAS for n in FLOWS_PER_NODE
    }


def test_scaling_capability(benchmark):
    outcomes = run_once(benchmark, _regenerate)
    print(banner("Contribution #2 — scaling: 2 to 500 flows at 1 Gbps (FIFO, 2 BDP)"))
    header = "  " + "cca".ljust(8) + "".join(f"{2 * n:>16d} flows" for n in FLOWS_PER_NODE)
    print(header)
    for cca in CCAS:
        cells = []
        for n in FLOWS_PER_NODE:
            r = outcomes[(cca, n)]
            cells.append(
                f"phi={r.link_utilization:4.2f} J={r.extra['flow_jain_index']:4.2f}"
            )
        print("  " + cca.ljust(8) + "".join(f"{c:>22s}" for c in cells))

    for (cca, n), r in outcomes.items():
        # Utilization survives scaling for every CCA.
        assert r.link_utilization > 0.85, (cca, n)
        # Per-sender fairness stays intact as populations grow.
        assert r.jain_index > 0.9 or n == 1, (cca, n, r.jain_index)
